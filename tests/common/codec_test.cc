#include "src/common/codec.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/common/rng.h"

namespace globaldb {
namespace {

TEST(CodecTest, Fixed16RoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0);
  PutFixed16(&buf, 0xbeef);
  PutFixed16(&buf, 0xffff);
  EXPECT_EQ(buf.size(), 6u);
  Slice in(buf);
  uint16_t v;
  ASSERT_TRUE(GetFixed16(&in, &v));
  EXPECT_EQ(v, 0);
  ASSERT_TRUE(GetFixed16(&in, &v));
  EXPECT_EQ(v, 0xbeef);
  ASSERT_TRUE(GetFixed16(&in, &v));
  EXPECT_EQ(v, 0xffff);
  EXPECT_FALSE(GetFixed16(&in, &v));
}

TEST(CodecTest, Fixed64RoundTrip) {
  std::string buf;
  const uint64_t kValues[] = {0, 1, 0x0102030405060708ULL,
                              std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : kValues) PutFixed64(&buf, v);
  Slice in(buf);
  for (uint64_t expected : kValues) {
    uint64_t v;
    ASSERT_TRUE(GetFixed64(&in, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodecTest, VarintBoundaries) {
  const uint64_t kValues[] = {0,     1,        127,        128,
                              16383, 16384,    (1u << 21) - 1,
                              1ULL << 35, std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : kValues) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    Slice in(buf);
    uint64_t out;
    ASSERT_TRUE(GetVarint64(&in, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodecTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    uint64_t out;
    EXPECT_FALSE(GetVarint64(&in, &out)) << "cut=" << cut;
  }
}

TEST(CodecTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 33);
  Slice in(buf);
  uint32_t out;
  EXPECT_FALSE(GetVarint32(&in, &out));
}

TEST(CodecTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(300, 'x'));
  Slice in(buf);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_TRUE(v.empty());
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v.size(), 300u);
  EXPECT_TRUE(in.empty());
}

TEST(CodecTest, LengthPrefixedTruncatedBodyFails) {
  std::string buf;
  PutVarint64(&buf, 10);  // claims 10 bytes
  buf += "abc";           // only 3 present
  Slice in(buf);
  Slice v;
  EXPECT_FALSE(GetLengthPrefixed(&in, &v));
}

TEST(CodecTest, ZigZag) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  const int64_t kValues[] = {0, -1, 1, -1000000, 1000000,
                             std::numeric_limits<int64_t>::min(),
                             std::numeric_limits<int64_t>::max()};
  for (int64_t v : kValues) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
    std::string buf;
    PutVarsint64(&buf, v);
    Slice in(buf);
    int64_t out;
    ASSERT_TRUE(GetVarsint64(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodecTest, RandomRoundTripProperty) {
  Rng rng(1234);
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix of magnitudes to cover all varint widths.
    uint64_t v = rng.Next() >> rng.Uniform(64);
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  Slice in(buf);
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(GetVarint64(&in, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(in.empty());
}

}  // namespace
}  // namespace globaldb
