#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace globaldb {
namespace {

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.Percentile(0), 42);
  EXPECT_EQ(h.Percentile(50), 42);
  EXPECT_EQ(h.Percentile(100), 42);
}

TEST(HistogramTest, PercentilesOfKnownDistribution) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(50), 50, 1);
  EXPECT_NEAR(h.Percentile(99), 99, 1);
  EXPECT_EQ(h.Percentile(100), 100);
}

TEST(HistogramTest, RecordAfterPercentileQueryStillCorrect) {
  Histogram h;
  h.Record(10);
  h.Record(30);
  EXPECT_EQ(h.Percentile(100), 30);
  h.Record(20);  // re-sorts lazily
  EXPECT_EQ(h.Percentile(0), 10);
  EXPECT_EQ(h.Percentile(100), 30);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, NegativeValuesSupported) {
  Histogram h;
  h.Record(-5);
  h.Record(5);
  EXPECT_EQ(h.min(), -5);
  EXPECT_EQ(h.max(), 5);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, AllNegativeSamplesReportNegativeMax) {
  // Regression: max() seeded from 0 used to report 0 when every recorded
  // sample was negative (e.g. clock-skew deltas).
  Histogram h;
  h.Record(-30);
  h.Record(-10);
  h.Record(-20);
  EXPECT_EQ(h.min(), -30);
  EXPECT_EQ(h.max(), -10);
}

TEST(HistogramTest, ValuesExposesRawSamples) {
  Histogram h;
  h.Record(3);
  h.Record(1);
  h.Record(2);
  EXPECT_EQ(h.values(), (std::vector<int64_t>{3, 1, 2}));
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(1);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0);
}

TEST(MetricsTest, CountersAccumulateAndDefaultToZero) {
  Metrics m;
  EXPECT_EQ(m.Get("nothing"), 0);
  m.Add("commits");
  m.Add("commits");
  m.Add("bytes", 100);
  EXPECT_EQ(m.Get("commits"), 2);
  EXPECT_EQ(m.Get("bytes"), 100);
  m.Add("bytes", -40);
  EXPECT_EQ(m.Get("bytes"), 60);
}

TEST(MetricsTest, HistogramsByName) {
  Metrics m;
  m.Hist("latency").Record(5);
  m.Hist("latency").Record(15);
  EXPECT_EQ(m.Hist("latency").count(), 2u);
  EXPECT_EQ(m.Hist("other").count(), 0u);
  m.Clear();
  EXPECT_EQ(m.Hist("latency").count(), 0u);
  EXPECT_EQ(m.Get("anything"), 0);
}

}  // namespace
}  // namespace globaldb
