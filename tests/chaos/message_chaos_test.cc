// Network-level message duplication + reordering acceptance: with every
// non-exempt delivery duplicated (the copy lagged so it lands out of order
// with later traffic), the per-transaction decision memos on the data nodes
// must absorb the duplicates — duplicated phase-2 commits/aborts and
// duplicated precommits are no-ops, cross-shard transactions stay atomic,
// and no acked write is lost.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/chaos/fault_scheduler.h"
#include "src/cluster/cluster.h"
#include "src/storage/schema.h"

namespace globaldb {
namespace {

struct PairAttempt {
  int64_t a = 0;
  int64_t b = 0;
  bool acked = false;
};

TableSchema PairSchema() {
  TableSchema schema;
  schema.name = "pairs";
  schema.columns = {{"id", ColumnType::kInt64}, {"val", ColumnType::kInt64}};
  schema.key_columns = {0};
  schema.distribution_column = 0;
  return schema;
}

int64_t NextKeyOnDifferentShard(const TableSchema& schema, uint32_t shards,
                                int64_t a, int64_t* next) {
  const ShardId shard_a = RouteRowToShard(schema, {a, 0}, shards);
  while (true) {
    const int64_t b = (*next)++;
    if (RouteRowToShard(schema, {b, 0}, shards) != shard_a) return b;
  }
}

sim::Task<void> PairWriter(Cluster* cluster, int cn_index, int64_t id_base,
                           std::vector<PairAttempt>* attempts,
                           const bool* stop) {
  CoordinatorNode* cn = &cluster->cn(cn_index);
  sim::Simulator* sim = cluster->simulator();
  TableSchema schema = PairSchema();
  const uint32_t shards = static_cast<uint32_t>(cluster->num_shards());
  int64_t next = id_base;
  while (!*stop) {
    co_await sim->Sleep(2 * kMillisecond);
    const int64_t a = next++;
    const int64_t b = NextKeyOnDifferentShard(schema, shards, a, &next);
    auto txn = co_await cn->Begin();
    if (!txn.ok()) continue;
    Row row_a = {a, a};
    Row row_b = {b, b};
    Status s = co_await cn->Insert(&*txn, "pairs", row_a);
    if (s.ok()) s = co_await cn->Insert(&*txn, "pairs", row_b);
    if (!s.ok()) {
      (void)co_await cn->Abort(&*txn);
      attempts->push_back({a, b, false});
      continue;
    }
    s = co_await cn->Commit(&*txn);
    attempts->push_back({a, b, s.ok()});
  }
}

TEST(MessageChaosTest, DuplicatedDeliveriesAreAbsorbedByDecisionMemos) {
  sim::Simulator sim(99);
  ClusterOptions options;
  options.topology = sim::Topology::SingleRegion();
  options.network.nagle_enabled = false;
  options.num_shards = 4;
  options.cns_per_region = 1;
  Cluster cluster(&sim, options);
  cluster.Start();

  bool ready = false;
  auto setup = [](Cluster* cluster, bool* ready) -> sim::Task<void> {
    TableSchema schema = PairSchema();
    EXPECT_TRUE((co_await cluster->cn(0).CreateTable(schema)).ok());
    *ready = true;
  };
  sim.Spawn(setup(&cluster, &ready));
  while (!ready) sim.RunFor(10 * kMillisecond);
  cluster.WaitForRcp();

  // Worst case: *every* non-exempt delivery is duplicated for two seconds.
  chaos::FaultScheduler faults(&cluster);
  chaos::FaultEvent on;
  on.at = sim.now() + 100 * kMillisecond;
  on.kind = chaos::FaultKind::kMessageChaos;
  on.duplicate_fraction = 1.0;
  faults.AddEvent(on);
  chaos::FaultEvent off;
  off.at = on.at + 2 * kSecond;
  off.kind = chaos::FaultKind::kMessageChaosOff;
  faults.AddEvent(off);
  faults.Start();

  bool stop = false;
  std::vector<PairAttempt> attempts;
  for (int w = 0; w < 3; ++w) {
    sim.Spawn(PairWriter(&cluster, 0, 1 + w * 1000000, &attempts, &stop));
  }

  sim.RunFor(2500 * kMillisecond);
  stop = true;
  sim.RunFor(200 * kMillisecond);
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    cluster.cn(i).StopServices();
  }
  sim.RunFor(2 * kSecond);
  EXPECT_FALSE(cluster.network().message_chaos_enabled());

  // Chaos actually fired, duplicated traffic, and the memos caught
  // duplicates: every re-delivered phase-2 decision answered from the memo.
  EXPECT_EQ(faults.metrics().Get("chaos.message_chaos"), 1);
  EXPECT_EQ(faults.metrics().Get("chaos.message_chaos_off"), 1);
  EXPECT_GT(cluster.network().metrics().Get("rpc.chaos_duplicates"), 0);
  int64_t dedup_hits = 0;
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    dedup_hits += cluster.data_node(s).metrics().Get("dn.decision_dedup_hits");
  }
  EXPECT_GT(dedup_hits, 0);
  EXPECT_GT(attempts.size(), 100u);

  // Replicas converged through the duplicated/reordered ship traffic.
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    const Lsn tail = cluster.data_node(s).log().next_lsn() - 1;
    for (uint32_t r = 0; r < cluster.options().replicas_per_shard; ++r) {
      EXPECT_EQ(cluster.replica(s, r).applier().applied_lsn(), tail)
          << "shard " << s << " replica " << r;
    }
  }

  // Acked pairs fully present; everything else all-or-nothing.
  bool verified = false;
  auto verify = [](Cluster* cluster, const std::vector<PairAttempt>* attempts,
                   bool* verified) -> sim::Task<void> {
    CoordinatorNode& cn = cluster->cn(0);
    for (size_t base = 0; base < attempts->size(); base += 64) {
      auto txn = co_await cn.Begin();
      EXPECT_TRUE(txn.ok());
      if (!txn.ok()) co_return;
      const size_t end = std::min(base + 64, attempts->size());
      std::vector<Row> keys;
      for (size_t i = base; i < end; ++i) {
        keys.push_back({(*attempts)[i].a});
        keys.push_back({(*attempts)[i].b});
      }
      auto rows = co_await cn.MultiGet(&*txn, "pairs", keys);
      EXPECT_TRUE(rows.ok());
      if (!rows.ok()) co_return;
      for (size_t i = base; i < end; ++i) {
        const bool has_a = (*rows)[(i - base) * 2].has_value();
        const bool has_b = (*rows)[(i - base) * 2 + 1].has_value();
        const PairAttempt& attempt = (*attempts)[i];
        if (attempt.acked) {
          EXPECT_TRUE(has_a && has_b)
              << "acked pair (" << attempt.a << ", " << attempt.b
              << ") lost: a=" << has_a << " b=" << has_b;
        } else {
          EXPECT_EQ(has_a, has_b)
              << "atomicity violation on pair (" << attempt.a << ", "
              << attempt.b << "): a=" << has_a << " b=" << has_b;
        }
      }
      (void)co_await cn.Abort(&*txn);
    }
    *verified = true;
  };
  sim.Spawn(verify(&cluster, &attempts, &verified));
  sim.RunFor(30 * kSecond);
  EXPECT_TRUE(verified);
}

}  // namespace
}  // namespace globaldb
