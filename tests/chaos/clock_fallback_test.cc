// Deterministic clock-fault scenario: a fleet-wide clock-sync outage on a
// GClock cluster must trigger the health monitor's automatic GClock -> GTM
// fallback, commits must keep succeeding in every phase, and after the sync
// service heals the monitor must dwell and return the cluster to GClock.
// Finally the committed-increment count must equal the stored counter value
// (no write lost or double-applied across the transitions).

#include <gtest/gtest.h>

#include "src/chaos/fault_scheduler.h"
#include "src/cluster/cluster.h"

namespace globaldb {
namespace {

/// Serially increments the single counter row through `cn`, tallying commit
/// outcomes. Every successful commit adds exactly 1 to the stored value.
sim::Task<void> IncrementLoop(Cluster* cluster, int cn_index, int* commits,
                              int* failures, const bool* stop) {
  CoordinatorNode* cn = &cluster->cn(cn_index);
  sim::Simulator* sim = cluster->simulator();
  while (!*stop) {
    co_await sim->Sleep(3 * kMillisecond);
    auto txn = co_await cn->Begin();
    if (!txn.ok()) {
      ++*failures;
      continue;
    }
    Row key = {static_cast<int64_t>(1)};
    auto row = co_await cn->GetForUpdate(&*txn, "counter", key);
    if (!row.ok() || !row->has_value()) {
      (void)co_await cn->Abort(&*txn);
      ++*failures;
      continue;
    }
    Row updated = **row;
    std::get<int64_t>(updated[1]) += 1;
    Status s = co_await cn->Update(&*txn, "counter", updated);
    if (!s.ok()) {
      (void)co_await cn->Abort(&*txn);
      ++*failures;
      continue;
    }
    // A failed Commit aborts internally; do not abort again.
    s = co_await cn->Commit(&*txn);
    if (s.ok()) {
      ++*commits;
    } else {
      ++*failures;
    }
  }
}

TEST(ClockFallbackTest, SyncOutageFallsBackToGtmAndReturns) {
  sim::Simulator sim(31);
  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.network.nagle_enabled = false;
  options.initial_mode = TimestampMode::kGclock;
  // Fast-drifting clocks so the error bound crosses the fallback threshold
  // within ~0.5 s of outage instead of ~5 s (keeps the test short).
  options.clock.max_drift_ppm = 2000;
  options.health.probe_interval = 50 * kMillisecond;
  options.health.probe_timeout = 80 * kMillisecond;  // > 55 ms worst RTT
  options.health.fallback_error_bound = 1 * kMillisecond;
  options.health.recover_error_bound = 200 * kMicrosecond;
  options.health.recover_dwell = 300 * kMillisecond;
  Cluster cluster(&sim, options);
  cluster.Start();

  bool ready = false;
  auto setup = [](Cluster* cluster, bool* ready) -> sim::Task<void> {
    CoordinatorNode& cn = cluster->cn(0);
    TableSchema schema;
    schema.name = "counter";
    schema.columns = {{"id", ColumnType::kInt64},
                      {"value", ColumnType::kInt64}};
    schema.key_columns = {0};
    schema.distribution_column = 0;
    EXPECT_TRUE((co_await cn.CreateTable(schema)).ok());
    auto txn = co_await cn.Begin();
    EXPECT_TRUE(txn.ok());
    if (!txn.ok()) co_return;
    Row row = {static_cast<int64_t>(1), static_cast<int64_t>(0)};
    EXPECT_TRUE((co_await cn.Insert(&*txn, "counter", row)).ok());
    EXPECT_TRUE((co_await cn.Commit(&*txn)).ok());
    *ready = true;
  };
  sim.Spawn(setup(&cluster, &ready));
  while (!ready) sim.RunFor(10 * kMillisecond);

  // Fleet-wide time-device outage from t=1s to t=3s (node unset = all CNs).
  chaos::FaultScheduler faults(&cluster);
  chaos::FaultEvent outage;
  outage.at = 1 * kSecond;
  outage.kind = chaos::FaultKind::kClockSyncOutage;
  faults.AddEvent(outage);
  chaos::FaultEvent restore = outage;
  restore.at = 3 * kSecond;
  restore.kind = chaos::FaultKind::kClockSyncRestore;
  faults.AddEvent(restore);
  faults.Start();

  bool stop = false;
  int commits = 0, failures = 0;
  for (int c = 0; c < 3; ++c) {
    sim.Spawn(IncrementLoop(&cluster, c, &commits, &failures, &stop));
  }

  // Phase 1: healthy GClock.
  sim.RunUntil(1 * kSecond);
  const int commits_healthy = commits;
  EXPECT_GT(commits_healthy, 0);
  EXPECT_EQ(cluster.health().mode(), TimestampMode::kGclock);

  // Phase 2: outage. The error bound crosses 1 ms ~0.5 s in; the next probe
  // drives the fallback. Commits must keep flowing the whole time.
  sim.RunUntil(2 * kSecond);
  const int commits_outage = commits;
  EXPECT_GT(commits_outage, commits_healthy);
  EXPECT_EQ(cluster.health().metrics().Get("health.fallback_to_gtm"), 1);
  EXPECT_EQ(cluster.transition().metrics().Get("transition.to_gtm"), 1);
  EXPECT_EQ(cluster.health().mode(), TimestampMode::kGtm);
  EXPECT_TRUE(cluster.health().fell_back());
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    EXPECT_EQ(cluster.cn(i).timestamp_source().mode(), TimestampMode::kGtm);
  }

  // Phase 3: still broken clocks, running on GTM.
  sim.RunUntil(3 * kSecond);
  const int commits_gtm = commits;
  EXPECT_GT(commits_gtm, commits_outage);
  EXPECT_EQ(cluster.health().metrics().Get("health.return_to_gclock"), 0);

  // Phase 4: sync restored at 3 s; after the recovery dwell the monitor
  // returns the cluster to GClock.
  sim.RunUntil(5 * kSecond);
  const int commits_recovered = commits;
  EXPECT_GT(commits_recovered, commits_gtm);
  EXPECT_EQ(cluster.health().metrics().Get("health.return_to_gclock"), 1);
  EXPECT_GE(cluster.transition().metrics().Get("transition.to_gclock"), 1);
  EXPECT_EQ(cluster.health().mode(), TimestampMode::kGclock);
  EXPECT_FALSE(cluster.health().fell_back());
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    EXPECT_EQ(cluster.cn(i).timestamp_source().mode(),
              TimestampMode::kGclock);
  }
  EXPECT_EQ(faults.metrics().Get("chaos.clock_sync_outage"), 1);
  EXPECT_EQ(faults.metrics().Get("chaos.clock_sync_restore"), 1);

  // Wind down and verify no committed increment was lost: the counter value
  // must equal the number of commits the writers observed.
  stop = true;
  sim.RunFor(500 * kMillisecond);
  int64_t value = -1;
  auto read_back = [](Cluster* cluster, int64_t* out) -> sim::Task<void> {
    CoordinatorNode& cn = cluster->cn(0);
    auto txn = co_await cn.Begin();
    EXPECT_TRUE(txn.ok());
    if (!txn.ok()) co_return;
    Row key = {static_cast<int64_t>(1)};
    auto row = co_await cn.Get(&*txn, "counter", key);
    EXPECT_TRUE(row.ok());
    EXPECT_TRUE(row.ok() && row->has_value());
    if (!row.ok() || !row->has_value()) co_return;
    *out = std::get<int64_t>((**row)[1]);
    (void)co_await cn.Abort(&*txn);
  };
  sim.Spawn(read_back(&cluster, &value));
  sim.RunFor(500 * kMillisecond);
  EXPECT_EQ(value, commits);
}

}  // namespace
}  // namespace globaldb
