// Pipelined write batching under faults: a coordinator crash-adjacent
// scenario — one shard's threshold flush has already landed (locks held on
// its primary) when another shard's primary dies before the commit-time
// flush can reach it. The commit must fail, the abort must roll back the
// flushed shard, and no lock may stay orphaned anywhere. After heal, the
// same keys must be writable again.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/chaos/fault_scheduler.h"
#include "src/cluster/cluster.h"

namespace globaldb {
namespace {

TableSchema AccountsSchema() {
  TableSchema s;
  s.name = "accounts";
  s.columns = {{"id", ColumnType::kInt64},
               {"owner", ColumnType::kString},
               {"balance", ColumnType::kInt64}};
  s.key_columns = {0};
  s.distribution_column = 0;
  return s;
}

class BatchAbortTest : public ::testing::Test {
 public:  // accessed from coroutine lambdas in tests
  BatchAbortTest() : sim_(55) {}

  void Build() {
    ClusterOptions options;
    options.topology = sim::Topology::ThreeCity();
    options.network.nagle_enabled = false;
    // Calls into a dead node fail in 200 ms instead of the 5 s default.
    options.network.rpc_timeout = 200 * kMillisecond;
    options.num_shards = 6;
    options.replicas_per_shard = 2;
    options.initial_mode = TimestampMode::kGclock;
    // Tiny batches so threshold flushes depart mid-transaction.
    options.coordinator.write_batch_max_entries = 2;
    cluster_ = std::make_unique<Cluster>(&sim_, options);
    cluster_->Start();
  }

  template <typename T>
  T RunTask(sim::Task<T> task) {
    std::optional<T> result;
    auto wrapper = [](sim::Task<T> t, std::optional<T>* out) -> sim::Task<void> {
      *out = co_await std::move(t);
    };
    sim_.Spawn(wrapper(std::move(task), &result));
    while (!result.has_value()) {
      sim_.RunFor(1 * kMillisecond);
    }
    return std::move(*result);
  }

  /// First `n` account ids (starting at `from`) that route to `shard`.
  std::vector<int64_t> IdsOnShard(ShardId shard, int n, int64_t from = 1) {
    TableSchema schema = AccountsSchema();
    std::vector<int64_t> ids;
    for (int64_t id = from; ids.size() < static_cast<size_t>(n); ++id) {
      Row row = {id, std::string("o"), int64_t{0}};
      if (RouteRowToShard(schema, row, cluster_->num_shards()) == shard) {
        ids.push_back(id);
      }
    }
    return ids;
  }

  size_t TotalLocksHeld() {
    size_t total = 0;
    for (size_t s = 0; s < cluster_->num_shards(); ++s) {
      total += cluster_->data_node(s).locks().TotalHeld();
    }
    return total;
  }

  sim::Task<Status> WriteIds(CoordinatorNode* cn,
                             std::vector<int64_t> ids) {
    auto txn = co_await cn->Begin();
    if (!txn.ok()) co_return txn.status();
    for (int64_t id : ids) {
      Row row = {id, std::string("owner"), id};
      Status s = co_await cn->Insert(&*txn, "accounts", row);
      if (!s.ok()) {
        (void)co_await cn->Abort(&*txn);
        co_return s;
      }
    }
    co_return co_await cn->Commit(&*txn);
  }

  sim::Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
};

// Shard A's flush already applied (locks held) when shard B's primary is
// crashed; the commit-time flush to B times out, the transaction aborts,
// and the abort rolls A back — zero orphaned locks cluster-wide, and the
// keys are reusable after B heals.
TEST_F(BatchAbortTest, CrashBetweenFlushAndPrecommitAbortsCleanly) {
  Build();
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());

  const ShardId shard_a = 0;
  const ShardId shard_b = 3;
  std::vector<int64_t> a_ids = IdsOnShard(shard_a, 2);
  std::vector<int64_t> b_ids = IdsOnShard(shard_b, 1);
  const NodeId b_primary = Cluster::PrimaryNodeId(shard_b);

  auto doomed = [this, &cn, a_ids, b_ids, b_primary]() -> sim::Task<Status> {
    auto txn = co_await cn.Begin();
    if (!txn.ok()) co_return txn.status();
    // Two entries for shard A hit write_batch_max_entries and the flush
    // departs while the transaction keeps running.
    for (int64_t id : a_ids) {
      Row row = {id, std::string("owner"), id};
      Status s = co_await cn.Insert(&*txn, "accounts", row);
      if (!s.ok()) co_return s;
    }
    co_await sim_.Sleep(300 * kMillisecond);
    // The pipelined flush landed: locks are held on A before commit.
    EXPECT_EQ(cluster_->data_node(0).locks().TotalHeld(), 2u);

    // One entry for shard B stays buffered; then B's primary dies.
    Row row = {b_ids[0], std::string("owner"), b_ids[0]};
    Status s = co_await cn.Insert(&*txn, "accounts", row);
    if (!s.ok()) co_return s;
    cluster_->network().SetNodeUp(b_primary, false);
    co_return co_await cn.Commit(&*txn);
  };
  Status commit = RunTask(doomed());
  EXPECT_FALSE(commit.ok());
  EXPECT_GE(cn.metrics().Get("cn.batch_flush_aborts"), 1);

  // The abort broadcast released A; B never received the batch at all.
  sim_.RunFor(500 * kMillisecond);
  EXPECT_EQ(TotalLocksHeld(), 0u);
  EXPECT_EQ(cluster_->data_node(shard_b).metrics().Get("dn.write_batches"), 0);

  // Heal and retry the identical write set: locks were really released and
  // the provisional rows rolled back, so everything inserts cleanly.
  cluster_->network().SetNodeUp(b_primary, true);
  sim_.RunFor(500 * kMillisecond);
  std::vector<int64_t> all = a_ids;
  all.push_back(b_ids[0]);
  EXPECT_TRUE(RunTask(WriteIds(&cn, all)).ok());
  EXPECT_EQ(TotalLocksHeld(), 0u);
}

// Same shape driven by a scripted fault schedule: the primary crashes
// before the transaction starts and restarts later; the batched commit in
// the outage window fails cleanly and a retry after restart succeeds.
TEST_F(BatchAbortTest, ScriptedCrashAndRestartRecovers) {
  Build();
  auto& cn = cluster_->cn(0);
  ASSERT_TRUE(RunTask(cn.CreateTable(AccountsSchema())).ok());

  const ShardId shard_a = 1;
  const ShardId shard_b = 4;
  std::vector<int64_t> a_ids = IdsOnShard(shard_a, 2);
  std::vector<int64_t> b_ids = IdsOnShard(shard_b, 1);

  const SimTime base = sim_.now();
  chaos::FaultScheduler faults(cluster_.get());
  {
    chaos::FaultEvent e;
    e.kind = chaos::FaultKind::kNodeCrash;
    e.at = base + 100 * kMillisecond;
    e.node = Cluster::PrimaryNodeId(shard_b);
    faults.AddEvent(e);
    e.kind = chaos::FaultKind::kNodeRestart;
    e.at = base + 1500 * kMillisecond;
    faults.AddEvent(e);
  }
  faults.Start();

  std::vector<int64_t> all = a_ids;
  all.push_back(b_ids[0]);
  auto in_outage = [this, &cn, all]() -> sim::Task<Status> {
    co_await sim_.Sleep(200 * kMillisecond);  // crash has happened
    co_return co_await WriteIds(&cn, all);
  };
  Status commit = RunTask(in_outage());
  EXPECT_FALSE(commit.ok());
  sim_.RunFor(300 * kMillisecond);
  EXPECT_EQ(TotalLocksHeld(), 0u);

  // Run past the restart, then the same write set goes through.
  while (sim_.now() < base + 1700 * kMillisecond) {
    sim_.RunFor(100 * kMillisecond);
  }
  EXPECT_TRUE(RunTask(WriteIds(&cn, all)).ok());
  EXPECT_EQ(TotalLocksHeld(), 0u);
}

}  // namespace
}  // namespace globaldb
