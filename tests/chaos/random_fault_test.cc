// TPC-C under a seeded random fault schedule (replica crashes, a
// primary<->replica link partition, a region partition, a clock-sync
// outage). Across multiple seeds: the workload keeps committing, every CN's
// RCP stays monotone, and after all faults heal every replica converges to
// its primary's exact log tail.

#include <gtest/gtest.h>

#include <vector>

#include "src/chaos/fault_scheduler.h"
#include "src/cluster/cluster.h"
#include "src/workload/tpcc.h"

namespace globaldb {
namespace {

/// Samples every CN's RCP periodically; flags any backward movement.
sim::Task<void> RcpWatcher(Cluster* cluster, const bool* stop,
                           bool* monotone) {
  std::vector<Timestamp> last(cluster->num_cns(), 0);
  while (!*stop) {
    co_await cluster->simulator()->Sleep(10 * kMillisecond);
    for (size_t i = 0; i < cluster->num_cns(); ++i) {
      const Timestamp rcp = cluster->cn(i).rcp();
      if (rcp < last[i]) *monotone = false;
      last[i] = rcp;
    }
  }
}

class RandomFaultTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFaultTest, TpccSurvivesRandomFaultSchedule) {
  const uint64_t seed = GetParam();
  sim::Simulator sim(seed);
  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.network.nagle_enabled = false;
  // Fail partitioned calls in 300 ms so blocked clients churn instead of
  // riding out the 5 s default timeout.
  options.network.rpc_timeout = 300 * kMillisecond;
  options.initial_mode = TimestampMode::kGclock;
  Cluster cluster(&sim, options);
  cluster.Start();

  TpccConfig config;
  config.num_warehouses = 6;
  config.customers_per_district = 10;
  config.items = 200;
  config.initial_orders_per_district = 5;
  TpccWorkload tpcc(&cluster, config, seed);
  ASSERT_TRUE(tpcc.Setup().ok());
  cluster.WaitForRcp();

  bool stop = false;
  bool rcp_monotone = true;
  sim.Spawn(RcpWatcher(&cluster, &stop, &rcp_monotone));

  // Fault window sits inside the measurement window; every fault is paired
  // with its heal, so the cluster is whole again before the final checks.
  chaos::RandomScheduleOptions fopts;
  fopts.start = sim.now() + 800 * kMillisecond;
  fopts.end = sim.now() + 3 * kSecond;
  fopts.replica_crashes = 2;
  fopts.link_partitions = 1;
  fopts.region_partitions = 1;
  fopts.clock_outages = 1;
  fopts.min_fault_duration = 150 * kMillisecond;
  fopts.max_fault_duration = 600 * kMillisecond;
  Rng fault_rng(seed * 7 + 1);
  chaos::FaultScheduler faults(&cluster);
  faults.AddRandomSchedule(&fault_rng, fopts);
  faults.Start();

  WorkloadDriver::Options dopts;
  dopts.clients = 12;
  dopts.warmup = 500 * kMillisecond;
  dopts.duration = 3 * kSecond;
  dopts.seed = seed;
  WorkloadDriver driver(&cluster, dopts);
  WorkloadStats stats = driver.Run(tpcc.MixFn());

  // The cluster never stopped committing under faults.
  EXPECT_GT(stats.committed, 50) << "seed " << seed;
  EXPECT_LT(stats.AbortRate(), 0.9) << "seed " << seed;
  // Every scheduled fault (and its heal) actually fired.
  EXPECT_EQ(faults.injected().size(), 10u);

  // Quiesce (stop heartbeats so log tails freeze) and let shippers finish
  // catching every replica up.
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    cluster.cn(i).StopServices();
  }
  sim.RunFor(3 * kSecond);
  stop = true;
  sim.RunFor(50 * kMillisecond);

  EXPECT_TRUE(rcp_monotone) << "seed " << seed;

  // Convergence: no replica is missing any part of its primary's log.
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    const Lsn tail = cluster.data_node(s).log().next_lsn() - 1;
    LogShipper* shipper = cluster.data_node(s).shipper();
    ASSERT_NE(shipper, nullptr);
    for (uint32_t r = 0; r < cluster.options().replicas_per_shard; ++r) {
      const NodeId replica = cluster.ReplicaNodeId(s, r);
      EXPECT_EQ(cluster.replica(s, r).applier().applied_lsn(), tail)
          << "seed " << seed << " shard " << s << " replica " << r;
      EXPECT_EQ(shipper->AckedLsn(replica), tail)
          << "seed " << seed << " shard " << s << " replica " << r;
      EXPECT_TRUE(shipper->IsReplicaHealthy(replica));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFaultTest,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace globaldb
