// Epoch/group-commit fault acceptance (DESIGN.md §15): targeted crashes are
// fired against a cluster committing through sealed epochs —
//   - a shard primary is killed at the grouped-prepare durability point
//     (between a member's writes landing and the epoch decision),
//   - another is killed the moment the grouped phase-2 (kDnEpochCommit)
//     arrives — after members were already acked on their CN,
//   - and a CN is made unreachable mid-seal (its grouped rounds die on the
//     wire), then restarted.
// Through all of it, across seeds: no write whose Commit() returned OK may
// be lost, no cross-shard transaction may commit on one participant and
// abort on another, and every inherited in-doubt member must resolve
// through the PR-7 outcome machinery (the epoch id doubles as an outcome
// key). A separate test drives the HealthMonitor's EPOCH -> GTM demotion
// and checks commits keep flowing under individual 2PC afterwards.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/chaos/fault_scheduler.h"
#include "src/cluster/cluster.h"
#include "src/storage/schema.h"

namespace globaldb {
namespace {

struct PairAttempt {
  int64_t a = 0;
  int64_t b = 0;
  bool acked = false;
};

TableSchema PairSchema() {
  TableSchema schema;
  schema.name = "pairs";
  schema.columns = {{"id", ColumnType::kInt64}, {"val", ColumnType::kInt64}};
  schema.key_columns = {0};
  schema.distribution_column = 0;
  return schema;
}

int64_t NextKeyOnDifferentShard(const TableSchema& schema, uint32_t shards,
                                int64_t a, int64_t* next) {
  const ShardId shard_a = RouteRowToShard(schema, {a, 0}, shards);
  while (true) {
    const int64_t b = (*next)++;
    if (RouteRowToShard(schema, {b, 0}, shards) != shard_a) return b;
  }
}

sim::Task<void> PairWriter(Cluster* cluster, int cn_index, int64_t id_base,
                           std::vector<PairAttempt>* attempts,
                           const bool* stop) {
  CoordinatorNode* cn = &cluster->cn(cn_index);
  sim::Simulator* sim = cluster->simulator();
  TableSchema schema = PairSchema();
  const uint32_t shards = static_cast<uint32_t>(cluster->num_shards());
  int64_t next = id_base;
  while (!*stop) {
    co_await sim->Sleep(2 * kMillisecond);
    const int64_t a = next++;
    const int64_t b = NextKeyOnDifferentShard(schema, shards, a, &next);
    auto txn = co_await cn->Begin();
    if (!txn.ok()) continue;
    Row row_a = {a, a};
    Row row_b = {b, b};
    Status s = co_await cn->Insert(&*txn, "pairs", row_a);
    if (s.ok()) s = co_await cn->Insert(&*txn, "pairs", row_b);
    if (!s.ok()) {
      (void)co_await cn->Abort(&*txn);
      attempts->push_back({a, b, false});
      continue;
    }
    s = co_await cn->Commit(&*txn);
    attempts->push_back({a, b, s.ok()});
  }
}

class EpochFaultTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EpochFaultTest, CrashesNeverLoseAckedEpochMembers) {
  const uint64_t seed = GetParam();
  sim::Simulator sim(seed);
  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.network.nagle_enabled = false;
  options.network.rpc_timeout = 250 * kMillisecond;
  options.initial_mode = TimestampMode::kEpoch;
  options.num_shards = 3;
  options.cns_per_region = 1;
  options.coordinator.epoch_interval = 5 * kMillisecond;
  // Sync-quorum: every grouped PREPARE a coordinator acted on is durable on
  // the most-caught-up replica before the epoch decides, so a promoted
  // successor inherits acked members as in-doubt instead of losing them.
  options.shipper.mode = ReplicationMode::kSyncQuorum;
  options.shipper.quorum_replicas = 1;
  options.shipper.max_retry_backoff = 500 * kMillisecond;
  options.health.primary_failover = true;
  options.health.probe_interval = 50 * kMillisecond;
  options.health.probe_timeout = 120 * kMillisecond;
  options.health.primary_miss_threshold = 2;
  // Pin the cluster in EPOCH through the crashes: a crash-window seal aborts
  // all of its members (briefly 1000 permille), which would trip the
  // demotion this test is not about — the fallback test below covers it.
  options.health.epoch_abort_permille_limit = 1000;
  options.health.epoch_seal_latency_limit = 60 * kSecond;
  Cluster cluster(&sim, options);
  cluster.Start();

  bool ready = false;
  auto setup = [](Cluster* cluster, bool* ready) -> sim::Task<void> {
    EXPECT_TRUE((co_await cluster->cn(0).CreateTable(PairSchema())).ok());
    *ready = true;
  };
  sim.Spawn(setup(&cluster, &ready));
  while (!ready) sim.RunFor(10 * kMillisecond);
  cluster.WaitForRcp();

  chaos::FaultScheduler faults(&cluster);
  const SimTime t0 = sim.now() + 600 * kMillisecond;
  // Primary of shard 0 dies at the grouped-prepare durability point; its
  // members' epoch decides abort (transport failure) before any ack.
  chaos::FaultEvent prepare_kill;
  prepare_kill.at = t0;
  prepare_kill.kind = chaos::FaultKind::kPrimaryCrash;
  prepare_kill.shard = 0;
  prepare_kill.stage = CrashStage::kAfterPrepareAppend;
  faults.AddEvent(prepare_kill);
  // Primary of shard 1 dies the moment a grouped phase-2 arrives — its
  // members are already acked, so the re-drive + in-doubt machinery must
  // land the commit on the promoted successor.
  chaos::FaultEvent commit_kill;
  commit_kill.at = t0 + 800 * kMillisecond;
  commit_kill.kind = chaos::FaultKind::kPrimaryCrash;
  commit_kill.shard = 1;
  commit_kill.stage = CrashStage::kOnCommitArrival;
  faults.AddEvent(commit_kill);
  // A CN becomes unreachable mid-seal: its epochs' grouped rounds die on
  // the wire, members resolve abort (never acked), shards holding their
  // prepares resolve through the decision cache once the CN returns.
  chaos::FaultEvent cn_crash;
  cn_crash.at = t0 + 1600 * kMillisecond;
  cn_crash.kind = chaos::FaultKind::kNodeCrash;
  cn_crash.node = Cluster::CnNodeId(1);
  faults.AddEvent(cn_crash);
  chaos::FaultEvent cn_restart;
  cn_restart.at = t0 + 2400 * kMillisecond;
  cn_restart.kind = chaos::FaultKind::kNodeRestart;
  cn_restart.node = Cluster::CnNodeId(1);
  faults.AddEvent(cn_restart);
  faults.Start();

  bool stop = false;
  std::vector<PairAttempt> attempts;
  for (int w = 0; w < 9; ++w) {
    sim.Spawn(PairWriter(&cluster, w % 3, 1 + w * 1000000, &attempts, &stop));
  }

  sim.RunFor(4 * kSecond);
  stop = true;
  sim.RunFor(300 * kMillisecond);
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    cluster.cn(i).StopServices();
  }
  sim.RunFor(2 * kSecond);

  EXPECT_EQ(faults.metrics().Get("chaos.primary_crash"), 2) << "seed "
                                                            << seed;
  EXPECT_EQ(cluster.health().metrics().Get("health.promotions"), 2)
      << "seed " << seed;
  EXPECT_GT(attempts.size(), 100u) << "seed " << seed;

  // Epochs actually carried the commits, and at least one grouped phase-2
  // had to be re-driven against a promoted successor.
  int64_t epoch_commits = 0;
  int64_t redrives = 0;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    epoch_commits += cluster.cn(i).metrics().Get("cn.epoch_commits");
    redrives += cluster.cn(i).metrics().Get("epoch.commit_redrives");
  }
  EXPECT_GT(epoch_commits, 100) << "seed " << seed;
  EXPECT_GE(redrives, 1) << "seed " << seed;

  // Nothing stays in doubt on any primary (original or promoted).
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.data_node(s).in_doubt_count(), 0u)
        << "seed " << seed << " shard " << s;
  }

  // Zero acked loss + cross-shard atomicity, pair by pair.
  bool verified = false;
  auto verify = [](Cluster* cluster, const std::vector<PairAttempt>* attempts,
                   bool* verified) -> sim::Task<void> {
    CoordinatorNode& cn = cluster->cn(0);
    for (size_t base = 0; base < attempts->size(); base += 64) {
      auto txn = co_await cn.Begin();
      EXPECT_TRUE(txn.ok());
      if (!txn.ok()) co_return;
      const size_t end = std::min(base + 64, attempts->size());
      std::vector<Row> keys;
      for (size_t i = base; i < end; ++i) {
        keys.push_back({(*attempts)[i].a});
        keys.push_back({(*attempts)[i].b});
      }
      auto rows = co_await cn.MultiGet(&*txn, "pairs", keys);
      EXPECT_TRUE(rows.ok());
      if (!rows.ok()) co_return;
      for (size_t i = base; i < end; ++i) {
        const bool has_a = (*rows)[(i - base) * 2].has_value();
        const bool has_b = (*rows)[(i - base) * 2 + 1].has_value();
        const PairAttempt& attempt = (*attempts)[i];
        if (attempt.acked) {
          EXPECT_TRUE(has_a && has_b)
              << "acked epoch member (" << attempt.a << ", " << attempt.b
              << ") lost: a=" << has_a << " b=" << has_b;
        } else {
          EXPECT_EQ(has_a, has_b)
              << "atomicity violation on pair (" << attempt.a << ", "
              << attempt.b << "): a=" << has_a << " b=" << has_b;
        }
      }
      (void)co_await cn.Abort(&*txn);
    }
    *verified = true;
  };
  sim.Spawn(verify(&cluster, &attempts, &verified));
  sim.RunFor(30 * kSecond);
  EXPECT_TRUE(verified) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochFaultTest,
                         ::testing::Values(17u, 171u, 1717u));

// EPOCH -> GTM demotion: with the seal-latency limit set below any real
// seal, the first health probe after a seal demotes the cluster. Commits
// must keep flowing afterwards — through the individual 2PC path — and the
// transition must be the bridgeless epoch variant.
TEST(EpochFallbackTest, HealthMonitorDemotesEpochToGtm) {
  sim::Simulator sim(29);
  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.network.nagle_enabled = false;
  options.initial_mode = TimestampMode::kEpoch;
  options.num_shards = 3;
  options.coordinator.epoch_interval = 5 * kMillisecond;
  options.health.probe_interval = 50 * kMillisecond;
  // Any seal (they take at least one WAN round) violates this limit.
  options.health.epoch_seal_latency_limit = 1 * kMicrosecond;
  Cluster cluster(&sim, options);
  cluster.Start();

  bool ready = false;
  auto setup = [](Cluster* cluster, bool* ready) -> sim::Task<void> {
    EXPECT_TRUE((co_await cluster->cn(0).CreateTable(PairSchema())).ok());
    *ready = true;
  };
  sim.Spawn(setup(&cluster, &ready));
  while (!ready) sim.RunFor(10 * kMillisecond);

  bool stop = false;
  std::vector<PairAttempt> attempts;
  for (int w = 0; w < 6; ++w) {
    sim.Spawn(PairWriter(&cluster, w % 3, 1 + w * 1000000, &attempts, &stop));
  }
  sim.RunFor(3 * kSecond);
  stop = true;
  sim.RunFor(500 * kMillisecond);

  // The demotion fired exactly once and flipped every node to GTM.
  EXPECT_EQ(cluster.health().metrics().Get("health.epoch_fallback_to_gtm"),
            1);
  EXPECT_TRUE(cluster.health().epoch_fell_back());
  EXPECT_EQ(cluster.health().mode(), TimestampMode::kGtm);
  EXPECT_EQ(cluster.transition().metrics().Get("transition.epoch_to_gtm"), 1);
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    EXPECT_EQ(cluster.cn(i).timestamp_source().mode(), TimestampMode::kGtm);
  }

  // Commits flowed before the demotion (epoch path) and after it (2PC
  // path): the epoch counter froze, the 2PC counters kept moving.
  int64_t epoch_commits = 0;
  int64_t total_commits = 0;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    epoch_commits += cluster.cn(i).metrics().Get("cn.epoch_commits");
    total_commits += cluster.cn(i).metrics().Get("cn.commits");
  }
  EXPECT_GE(epoch_commits, 1);
  EXPECT_GT(total_commits, epoch_commits);

  // The post-demotion world still accepts writes end to end.
  const size_t acked =
      static_cast<size_t>(std::count_if(attempts.begin(), attempts.end(),
                                        [](const PairAttempt& a) {
                                          return a.acked;
                                        }));
  EXPECT_GT(acked, 100u);
}

}  // namespace
}  // namespace globaldb
