// Staged-crash 2PC atomicity acceptance (DESIGN.md §13): shard primaries
// are killed at targeted 2PC protocol points — after the PREPARE is
// appended and replicated, on phase-2 commit arrival, and mid phase-2 after
// the commit append — while a cross-shard insert workload runs. The
// promoted successors must resolve every inherited in-doubt transaction,
// coordinators must re-drive decisions that died with a primary, and a
// revived ex-primary must rejoin as a replica. Through all of it:
//   - no transaction commits on one participant and aborts on another, and
//   - no write whose Commit() returned OK is lost.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/chaos/fault_scheduler.h"
#include "src/cluster/cluster.h"
#include "src/storage/schema.h"

namespace globaldb {
namespace {

/// One cross-shard insert attempt: two rows routed to different shards,
/// written in a single transaction. `acked` records whether Commit()
/// returned OK — an errored commit is ambiguous (it may still land via
/// outcome recovery), so those attempts are only checked for atomicity,
/// never for presence.
struct PairAttempt {
  int64_t a = 0;
  int64_t b = 0;
  bool acked = false;
};

TableSchema PairSchema() {
  TableSchema schema;
  schema.name = "pairs";
  schema.columns = {{"id", ColumnType::kInt64}, {"val", ColumnType::kInt64}};
  schema.key_columns = {0};
  schema.distribution_column = 0;
  return schema;
}

/// Advances `*next` until it yields a key routed to a different shard
/// than `a`.
int64_t NextKeyOnDifferentShard(const TableSchema& schema, uint32_t shards,
                                int64_t a, int64_t* next) {
  const ShardId shard_a = RouteRowToShard(schema, {a, 0}, shards);
  while (true) {
    const int64_t b = (*next)++;
    if (RouteRowToShard(schema, {b, 0}, shards) != shard_a) return b;
  }
}

sim::Task<void> PairWriter(Cluster* cluster, int cn_index, int64_t id_base,
                           std::vector<PairAttempt>* attempts,
                           const bool* stop) {
  CoordinatorNode* cn = &cluster->cn(cn_index);
  sim::Simulator* sim = cluster->simulator();
  TableSchema schema = PairSchema();
  const uint32_t shards = static_cast<uint32_t>(cluster->num_shards());
  int64_t next = id_base;
  while (!*stop) {
    co_await sim->Sleep(2 * kMillisecond);
    const int64_t a = next++;
    const int64_t b = NextKeyOnDifferentShard(schema, shards, a, &next);
    auto txn = co_await cn->Begin();
    if (!txn.ok()) continue;
    Row row_a = {a, a};
    Row row_b = {b, b};
    Status s = co_await cn->Insert(&*txn, "pairs", row_a);
    if (s.ok()) s = co_await cn->Insert(&*txn, "pairs", row_b);
    if (!s.ok()) {
      (void)co_await cn->Abort(&*txn);
      attempts->push_back({a, b, false});
      continue;
    }
    s = co_await cn->Commit(&*txn);
    attempts->push_back({a, b, s.ok()});
  }
}

class StagedCrashAtomicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StagedCrashAtomicityTest, NoCrossShardAtomicityViolation) {
  const uint64_t seed = GetParam();
  sim::Simulator sim(seed);
  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.network.nagle_enabled = false;
  options.network.rpc_timeout = 250 * kMillisecond;
  options.initial_mode = TimestampMode::kGtm;
  options.num_shards = 3;
  options.cns_per_region = 1;
  // Sync-quorum: every PREPARE a coordinator acted on is durable on the
  // most-caught-up replica before the decision, so promotion transfers it
  // as in-doubt instead of losing it.
  options.shipper.mode = ReplicationMode::kSyncQuorum;
  options.shipper.quorum_replicas = 1;
  options.shipper.max_retry_backoff = 500 * kMillisecond;
  options.health.primary_failover = true;
  options.health.probe_interval = 50 * kMillisecond;
  options.health.probe_timeout = 120 * kMillisecond;
  options.health.primary_miss_threshold = 2;
  Cluster cluster(&sim, options);
  cluster.Start();

  bool ready = false;
  auto setup = [](Cluster* cluster, bool* ready) -> sim::Task<void> {
    TableSchema schema = PairSchema();
    EXPECT_TRUE((co_await cluster->cn(0).CreateTable(schema)).ok());
    *ready = true;
  };
  sim.Spawn(setup(&cluster, &ready));
  while (!ready) sim.RunFor(10 * kMillisecond);
  cluster.WaitForRcp();

  // One staged kill per shard, each at a different 2PC protocol point, then
  // the first casualty is revived into the promoted timeline.
  chaos::FaultScheduler faults(&cluster);
  const SimTime t0 = sim.now() + 600 * kMillisecond;
  auto stage_kill = [&faults](SimTime at, ShardId shard, CrashStage stage) {
    chaos::FaultEvent event;
    event.at = at;
    event.kind = chaos::FaultKind::kPrimaryCrash;
    event.shard = shard;
    event.stage = stage;
    faults.AddEvent(event);
  };
  stage_kill(t0, 0, CrashStage::kAfterPrepareAppend);
  stage_kill(t0 + 800 * kMillisecond, 1, CrashStage::kOnCommitArrival);
  stage_kill(t0 + 1600 * kMillisecond, 2, CrashStage::kMidPhase2);
  chaos::FaultEvent revive;
  revive.at = t0 + 2600 * kMillisecond;
  revive.kind = chaos::FaultKind::kPrimaryRevive;
  revive.shard = 0;
  faults.AddEvent(revive);
  faults.Start();

  bool stop = false;
  std::vector<PairAttempt> attempts;
  for (int w = 0; w < 9; ++w) {
    sim.Spawn(PairWriter(&cluster, w % 3, 1 + w * 1000000, &attempts, &stop));
  }

  sim.RunFor(4 * kSecond);
  stop = true;
  sim.RunFor(300 * kMillisecond);
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    cluster.cn(i).StopServices();
  }
  sim.RunFor(2 * kSecond);

  // Every staged crash fired and was recovered by promotion.
  EXPECT_EQ(faults.metrics().Get("chaos.primary_crash"), 3) << "seed "
                                                            << seed;
  EXPECT_EQ(faults.metrics().Get("chaos.primary_revive"), 1) << "seed "
                                                             << seed;
  EXPECT_EQ(cluster.health().metrics().Get("health.promotions"), 3)
      << "seed " << seed;
  EXPECT_GT(attempts.size(), 100u) << "seed " << seed;

  // Phase-2 deliveries died with the primaries; at least one coordinator
  // re-drove its decision against a promoted successor.
  int64_t commit_retries = 0;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    commit_retries += cluster.cn(i).metrics().Get("cn.commit_retries");
  }
  EXPECT_GE(commit_retries, 1) << "seed " << seed;

  // The prepare-point kill on shard 0 left prepared transactions only the
  // promoted successor can resolve: it inherited them in doubt and settled
  // them by querying the owning CN's decision cache (the CN's own abort
  // re-drive gave up while the shard was down). Nothing stays in doubt.
  DataNode& promoted0 = cluster.data_node(0);
  EXPECT_GE(promoted0.metrics().Get("dn.promotion_in_doubt"), 1)
      << "seed " << seed;
  EXPECT_GE(promoted0.metrics().Get("dn.outcome_resolved_by_cn"), 1)
      << "seed " << seed;
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.data_node(s).in_doubt_count(), 0u)
        << "seed " << seed << " shard " << s;
    EXPECT_NE(cluster.primary_node_id(s), Cluster::PrimaryNodeId(s))
        << "seed " << seed << " shard " << s;
  }

  // The revived ex-primary detected it was superseded (stale promotion
  // epoch in its hello), was re-seeded with a reset snapshot, and converged
  // to the promoted primary's log tail.
  ASSERT_EQ(cluster.revived_replicas_of(0).size(), 1u) << "seed " << seed;
  EXPECT_GE(promoted0.metrics().Get("dn.stale_epoch_hellos"), 1)
      << "seed " << seed;
  const Lsn tail0 = promoted0.log().next_lsn() - 1;
  EXPECT_EQ(cluster.revived_replicas_of(0)[0]->applier().applied_lsn(),
            tail0)
      << "seed " << seed;

  // Cross-shard atomicity + zero acked loss: every acked pair is fully
  // present; every other pair is all-or-nothing.
  bool verified = false;
  auto verify = [](Cluster* cluster, const std::vector<PairAttempt>* attempts,
                   bool* verified) -> sim::Task<void> {
    CoordinatorNode& cn = cluster->cn(0);
    for (size_t base = 0; base < attempts->size(); base += 64) {
      auto txn = co_await cn.Begin();
      EXPECT_TRUE(txn.ok());
      if (!txn.ok()) co_return;
      const size_t end = std::min(base + 64, attempts->size());
      std::vector<Row> keys;
      for (size_t i = base; i < end; ++i) {
        keys.push_back({(*attempts)[i].a});
        keys.push_back({(*attempts)[i].b});
      }
      auto rows = co_await cn.MultiGet(&*txn, "pairs", keys);
      EXPECT_TRUE(rows.ok());
      if (!rows.ok()) co_return;
      for (size_t i = base; i < end; ++i) {
        const bool has_a = (*rows)[(i - base) * 2].has_value();
        const bool has_b = (*rows)[(i - base) * 2 + 1].has_value();
        const PairAttempt& attempt = (*attempts)[i];
        if (attempt.acked) {
          EXPECT_TRUE(has_a && has_b)
              << "acked pair (" << attempt.a << ", " << attempt.b
              << ") lost: a=" << has_a << " b=" << has_b;
        } else {
          EXPECT_EQ(has_a, has_b)
              << "atomicity violation on pair (" << attempt.a << ", "
              << attempt.b << "): a=" << has_a << " b=" << has_b;
        }
      }
      (void)co_await cn.Abort(&*txn);
    }
    *verified = true;
  };
  sim.Spawn(verify(&cluster, &attempts, &verified));
  sim.RunFor(30 * kSecond);
  EXPECT_TRUE(verified) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StagedCrashAtomicityTest,
                         ::testing::Values(11u, 42u, 4242u));

}  // namespace
}  // namespace globaldb
