// Replica outage and recovery: one replica of shard 0 is partitioned from
// its primary, the other crashes outright, while a writer keeps inserting.
// The shipper must mark both unhealthy (capped backoff, no livelock), and
// after heal/restart both must converge to the primary's exact log tail —
// the restart path via the replica's durable-LSN re-announcement, the
// partition path via normal retry. Zero committed writes may be lost.

#include <gtest/gtest.h>

#include "src/chaos/fault_scheduler.h"
#include "src/cluster/cluster.h"

namespace globaldb {
namespace {

sim::Task<void> InsertLoop(Cluster* cluster, int cn_index, int64_t id_base,
                           int* committed, const bool* stop) {
  CoordinatorNode* cn = &cluster->cn(cn_index);
  sim::Simulator* sim = cluster->simulator();
  int64_t next_id = id_base;
  while (!*stop) {
    co_await sim->Sleep(2 * kMillisecond);
    auto txn = co_await cn->Begin();
    if (!txn.ok()) continue;
    Row row = {next_id, next_id * 10};
    Status s = co_await cn->Insert(&*txn, "events", row);
    if (!s.ok()) {
      (void)co_await cn->Abort(&*txn);
      continue;
    }
    s = co_await cn->Commit(&*txn);
    if (s.ok()) {
      ++*committed;
      ++next_id;
    } else {
      ++next_id;  // id burned either way; uniqueness is what matters
    }
  }
}

TEST(PartitionHealTest, ReplicasConvergeToPrimaryTailAfterHeal) {
  sim::Simulator sim(41);
  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.network.nagle_enabled = false;
  // Short transport timeout so partitioned ship calls fail in 200 ms, not
  // the 5 s default (a partition is a silent black hole).
  options.network.rpc_timeout = 200 * kMillisecond;
  options.initial_mode = TimestampMode::kGtm;
  options.shipper.max_retry_backoff = 500 * kMillisecond;
  Cluster cluster(&sim, options);
  cluster.Start();

  bool ready = false;
  auto setup = [](Cluster* cluster, bool* ready) -> sim::Task<void> {
    CoordinatorNode& cn = cluster->cn(0);
    TableSchema schema;
    schema.name = "events";
    schema.columns = {{"id", ColumnType::kInt64},
                      {"payload", ColumnType::kInt64}};
    schema.key_columns = {0};
    schema.distribution_column = 0;
    EXPECT_TRUE((co_await cn.CreateTable(schema)).ok());
    *ready = true;
  };
  sim.Spawn(setup(&cluster, &ready));
  while (!ready) sim.RunFor(10 * kMillisecond);

  const NodeId partitioned_replica = cluster.ReplicaNodeId(0, 0);
  const NodeId crashed_replica = cluster.ReplicaNodeId(0, 1);
  chaos::FaultScheduler faults(&cluster);
  {
    chaos::FaultEvent e;
    e.kind = chaos::FaultKind::kLinkPartition;
    e.at = 200 * kMillisecond;
    e.node = Cluster::PrimaryNodeId(0);
    e.peer = partitioned_replica;
    faults.AddEvent(e);
    e.kind = chaos::FaultKind::kLinkHeal;
    e.at = 1200 * kMillisecond;
    faults.AddEvent(e);
  }
  {
    chaos::FaultEvent e;
    e.kind = chaos::FaultKind::kNodeCrash;
    e.at = 400 * kMillisecond;
    e.node = crashed_replica;
    faults.AddEvent(e);
    e.kind = chaos::FaultKind::kNodeRestart;
    e.at = 1400 * kMillisecond;
    faults.AddEvent(e);
  }
  faults.Start();

  // Several writers per CN (cross-region commits take up to ~110 ms each, so
  // a single serial writer would only manage ~10 commits/s).
  bool stop = false;
  int committed = 0;
  for (int w = 0; w < 9; ++w) {
    sim.Spawn(InsertLoop(&cluster, w % 3, 1 + w * 1000000, &committed,
                         &stop));
  }

  // Mid-outage: the shipper has marked both shard-0 replicas down and
  // stopped hammering them (capped exponential backoff).
  sim.RunUntil(1 * kSecond);
  LogShipper* shipper = cluster.data_node(0).shipper();
  ASSERT_NE(shipper, nullptr);
  EXPECT_FALSE(shipper->IsReplicaHealthy(partitioned_replica));
  EXPECT_FALSE(shipper->IsReplicaHealthy(crashed_replica));
  EXPECT_EQ(shipper->metrics().Get("ship.replica_down"), 2);
  const Timestamp rcp_mid = cluster.cn(0).rcp();

  // Run through heal + restart, stop the writer, then quiesce (stop CN
  // heartbeats so the log tail is stable) and let shippers catch up.
  sim.RunUntil(2 * kSecond);
  stop = true;
  sim.RunFor(100 * kMillisecond);
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    cluster.cn(i).StopServices();
  }
  sim.RunFor(2500 * kMillisecond);

  EXPECT_GT(committed, 100);
  // RCP never went backwards across the outage.
  EXPECT_GE(cluster.cn(0).rcp(), rcp_mid);

  // Every replica of every shard has applied the primary's exact log tail:
  // no silent LSN gap survived the partition or the crash.
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    const Lsn tail = cluster.data_node(s).log().next_lsn() - 1;
    LogShipper* sh = cluster.data_node(s).shipper();
    ASSERT_NE(sh, nullptr);
    for (uint32_t r = 0; r < cluster.options().replicas_per_shard; ++r) {
      EXPECT_EQ(cluster.replica(s, r).applier().applied_lsn(), tail)
          << "shard " << s << " replica " << r;
      EXPECT_EQ(sh->AckedLsn(cluster.ReplicaNodeId(s, r)), tail);
      EXPECT_TRUE(sh->IsReplicaHealthy(cluster.ReplicaNodeId(s, r)));
    }
  }

  // The restart went through the hello path: the replica re-announced its
  // durable LSN and the primary rewound its cursor.
  EXPECT_EQ(cluster.replica(0, 1).metrics().Get("replica.restarts"), 1);
  EXPECT_GE(cluster.data_node(0).metrics().Get("dn.repl_hellos"), 1);
  EXPECT_GE(shipper->metrics().Get("ship.hellos"), 1);
  EXPECT_GE(shipper->metrics().Get("ship.replica_recovered"), 2);
  // The RCP collector saw the crashed replica fail and come back.
  EXPECT_GE(cluster.cn(0).rcp_service().metrics().Get("rcp.replica_recovered"),
            1);

  // Zero lost committed writes: every committed insert is present on the
  // primary AND on every replica of its shard.
  const TableSchema* schema = cluster.cn(0).catalog().FindTable("events");
  ASSERT_NE(schema, nullptr);
  size_t primary_rows = 0;
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    MvccTable* table = cluster.data_node(s).store().GetTable(schema->id);
    const size_t shard_rows =
        table == nullptr
            ? 0
            : table
                  ->Scan("", "", kTimestampMax - 1, kInvalidTxnId, 100000,
                         nullptr)
                  .size();
    primary_rows += shard_rows;
    for (uint32_t r = 0; r < cluster.options().replicas_per_shard; ++r) {
      MvccTable* rt = cluster.replica(s, r).store().GetTable(schema->id);
      const size_t replica_rows =
          rt == nullptr
              ? 0
              : rt->Scan("", "", kTimestampMax - 1, kInvalidTxnId, 100000,
                         nullptr)
                    .size();
      EXPECT_EQ(replica_rows, shard_rows)
          << "shard " << s << " replica " << r;
    }
  }
  EXPECT_EQ(primary_rows, static_cast<size_t>(committed));
}

}  // namespace
}  // namespace globaldb
