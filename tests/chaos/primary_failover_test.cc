// Primary failover acceptance (DESIGN.md §12): under a seeded random
// schedule of DN-primary crashes (sync-quorum replication, failover
// enabled), the HealthMonitor promotes the most-caught-up replica, every CN
// re-routes to it, and ZERO writes whose Commit() returned OK are lost —
// each one is readable through the cluster after recovery.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/chaos/fault_scheduler.h"
#include "src/cluster/cluster.h"

namespace globaldb {
namespace {

/// Writes distinct ledger ids; records an id only when Commit returned OK.
/// A commit that failed (the primary died mid-call) is *ambiguous* — it may
/// or may not have landed — so it is never asserted either way.
sim::Task<void> LedgerWriter(Cluster* cluster, int cn_index, int64_t id_base,
                             std::vector<int64_t>* committed,
                             const bool* stop) {
  CoordinatorNode* cn = &cluster->cn(cn_index);
  sim::Simulator* sim = cluster->simulator();
  int64_t next_id = id_base;
  while (!*stop) {
    co_await sim->Sleep(2 * kMillisecond);
    auto txn = co_await cn->Begin();
    if (!txn.ok()) continue;
    Row row = {next_id, next_id * 10};
    Status s = co_await cn->Insert(&*txn, "ledger", row);
    if (!s.ok()) {
      (void)co_await cn->Abort(&*txn);
      ++next_id;
      continue;
    }
    s = co_await cn->Commit(&*txn);
    if (s.ok()) committed->push_back(next_id);
    ++next_id;  // id burned either way; uniqueness is what matters
  }
}

class PrimaryFailoverTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrimaryFailoverTest, NoAcknowledgedWriteLostAcrossPromotions) {
  const uint64_t seed = GetParam();
  sim::Simulator sim(seed);
  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.network.nagle_enabled = false;
  // Fast transport failure so calls into the dead primary churn quickly.
  options.network.rpc_timeout = 250 * kMillisecond;
  options.initial_mode = TimestampMode::kGtm;
  // Sync-quorum: an OK commit is on at least one replica, and the
  // most-caught-up replica's applied LSN is >= every quorum ack — the
  // basis of the zero-loss promotion guarantee.
  options.shipper.mode = ReplicationMode::kSyncQuorum;
  options.shipper.quorum_replicas = 1;
  options.shipper.max_retry_backoff = 500 * kMillisecond;
  options.health.primary_failover = true;
  options.health.probe_interval = 50 * kMillisecond;
  options.health.probe_timeout = 120 * kMillisecond;
  options.health.primary_miss_threshold = 2;
  Cluster cluster(&sim, options);
  cluster.Start();

  bool ready = false;
  auto setup = [](Cluster* cluster, bool* ready) -> sim::Task<void> {
    CoordinatorNode& cn = cluster->cn(0);
    TableSchema schema;
    schema.name = "ledger";
    schema.columns = {{"id", ColumnType::kInt64},
                      {"balance", ColumnType::kInt64}};
    schema.key_columns = {0};
    schema.distribution_column = 0;
    EXPECT_TRUE((co_await cn.CreateTable(schema)).ok());
    *ready = true;
  };
  sim.Spawn(setup(&cluster, &ready));
  while (!ready) sim.RunFor(10 * kMillisecond);
  cluster.WaitForRcp();

  // Two primary kills on distinct shards, at seed-random times. No heals:
  // recovery is promotion, not resurrection.
  chaos::RandomScheduleOptions fopts;
  fopts.start = sim.now() + 900 * kMillisecond;
  fopts.end = sim.now() + 2200 * kMillisecond;
  fopts.primary_crashes = 2;
  fopts.replica_crashes = 0;
  fopts.link_partitions = 0;
  fopts.region_partitions = 0;
  fopts.clock_outages = 0;
  Rng fault_rng(seed * 13 + 5);
  chaos::FaultScheduler faults(&cluster);
  faults.AddRandomSchedule(&fault_rng, fopts);
  faults.Start();

  bool stop = false;
  std::vector<int64_t> committed;
  for (int w = 0; w < 9; ++w) {
    sim.Spawn(LedgerWriter(&cluster, w % 3, 1 + w * 1000000, &committed,
                           &stop));
  }

  // Fault window + enough slack for detection (2 * 50ms probes + timeout)
  // and post-promotion catch-up, with the workload still running.
  sim.RunFor(3200 * kMillisecond);
  stop = true;
  sim.RunFor(200 * kMillisecond);
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    cluster.cn(i).StopServices();
  }
  sim.RunFor(2 * kSecond);

  // The workload survived both kills and the monitor promoted a replacement
  // for each.
  EXPECT_GT(committed.size(), 50u) << "seed " << seed;
  EXPECT_EQ(faults.metrics().Get("chaos.primary_crash"), 2) << "seed "
                                                            << seed;
  EXPECT_EQ(cluster.health().metrics().Get("health.promotions"), 2)
      << "seed " << seed;
  int moved = 0;
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    if (cluster.primary_node_id(s) != Cluster::PrimaryNodeId(s)) {
      ++moved;
      // The replacement is a real primary: it recorded its promotion and
      // is reachable at the old replica's node id.
      EXPECT_EQ(cluster.data_node(s).metrics().Get("dn.promotions"), 1);
      EXPECT_EQ(cluster.data_node(s).node_id(), cluster.primary_node_id(s));
    }
  }
  EXPECT_EQ(moved, 2) << "seed " << seed;

  // Surviving replicas re-based onto the new primaries' timelines and
  // converged to their exact log tails (the promoted zombie is excluded —
  // it no longer replicates).
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    const Lsn tail = cluster.data_node(s).log().next_lsn() - 1;
    LogShipper* shipper = cluster.data_node(s).shipper();
    ASSERT_NE(shipper, nullptr);
    for (uint32_t r = 0; r < cluster.options().replicas_per_shard; ++r) {
      const NodeId replica = cluster.ReplicaNodeId(s, r);
      if (replica == cluster.primary_node_id(s)) continue;
      EXPECT_EQ(cluster.replica(s, r).applier().applied_lsn(), tail)
          << "seed " << seed << " shard " << s << " replica " << r;
      EXPECT_EQ(shipper->AckedLsn(replica), tail)
          << "seed " << seed << " shard " << s << " replica " << r;
    }
  }

  // Zero lost acknowledged writes: every OK-committed id is readable
  // through a CN (which routes to the promoted primaries).
  bool verified = false;
  auto verify = [](Cluster* cluster, const std::vector<int64_t>* committed,
                   bool* verified) -> sim::Task<void> {
    CoordinatorNode& cn = cluster->cn(0);
    size_t found = 0;
    for (size_t base = 0; base < committed->size(); base += 64) {
      auto txn = co_await cn.Begin();
      EXPECT_TRUE(txn.ok());
      if (!txn.ok()) co_return;
      std::vector<Row> keys;
      for (size_t i = base; i < std::min(base + 64, committed->size()); ++i) {
        keys.push_back({(*committed)[i]});
      }
      auto rows = co_await cn.MultiGet(&*txn, "ledger", keys);
      EXPECT_TRUE(rows.ok());
      if (!rows.ok()) co_return;
      for (size_t i = 0; i < rows->size(); ++i) {
        if ((*rows)[i].has_value()) {
          ++found;
        } else {
          ADD_FAILURE() << "committed id " << (*committed)[base + i]
                        << " lost after failover";
        }
      }
      (void)co_await cn.Abort(&*txn);
    }
    EXPECT_EQ(found, committed->size());
    *verified = true;
  };
  sim.Spawn(verify(&cluster, &committed, &verified));
  sim.RunFor(30 * kSecond);
  EXPECT_TRUE(verified) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimaryFailoverTest,
                         ::testing::Values(7u, 77u, 777u));

}  // namespace
}  // namespace globaldb
