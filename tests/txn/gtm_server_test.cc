// Direct unit tests of the GTM server's mode-dependent timestamp rules
// (Eqs. 2-3 and the Fig. 2 abort rule), exercised through its RPC handler.

#include "src/txn/gtm_server.h"

#include <gtest/gtest.h>

#include "src/rpc/rpc_client.h"
#include "src/rpc/wire.h"
#include "src/sim/simulator.h"

namespace globaldb {
namespace {

class GtmServerTest : public ::testing::Test {
 protected:
  GtmServerTest()
      : sim_(3), net_(&sim_, sim::Topology::SingleRegion(), Options()) {
    net_.RegisterNode(0, 0);
    net_.RegisterNode(1, 0);
    gtm_ = std::make_unique<GtmServer>(&sim_, &net_, 0);
    client_ = std::make_unique<rpc::RpcClient>(&net_, 1);
  }

  static sim::NetworkOptions Options() {
    sim::NetworkOptions o;
    o.nagle_enabled = false;
    return o;
  }

  GtmTimestampReply Ask(GtmTimestampRequest request) {
    GtmTimestampReply reply;
    bool done = false;
    auto call = [](rpc::RpcClient* client, GtmTimestampRequest req,
                   GtmTimestampReply* out, bool* done) -> sim::Task<void> {
      auto response = co_await client->Call(0, kGtmTimestamp, req);
      EXPECT_TRUE(response.ok());
      if (response.ok()) *out = *response;
      *done = true;
    };
    sim_.Spawn(call(client_.get(), request, &reply, &done));
    while (!done) sim_.RunFor(1 * kMillisecond);
    return reply;
  }

  sim::Simulator sim_;
  sim::Network net_;
  std::unique_ptr<GtmServer> gtm_;
  std::unique_ptr<rpc::RpcClient> client_;
};

TEST_F(GtmServerTest, GtmModeIncrementsCounter) {
  GtmTimestampRequest request;
  request.client_mode = TimestampMode::kGtm;
  EXPECT_EQ(Ask(request).ts, 1u);
  EXPECT_EQ(Ask(request).ts, 2u);
  EXPECT_EQ(Ask(request).ts, 3u);
  EXPECT_EQ(gtm_->counter(), 3u);
}

TEST_F(GtmServerTest, DualModeBridgesAboveClockUpperBound) {
  gtm_->SetMode(TimestampMode::kDual, 0);
  GtmTimestampRequest request;
  request.client_mode = TimestampMode::kDual;
  request.gclock_upper = 1'000'000'000;
  request.error_bound = 70 * kMicrosecond;
  GtmTimestampReply reply = Ask(request);
  EXPECT_EQ(reply.ts, 1'000'000'001u);  // max(counter, upper) + 1
  EXPECT_EQ(reply.server_mode, TimestampMode::kDual);
  // A subsequent plain-GTM request continues above the bridged value.
  GtmTimestampRequest gtm_request;
  gtm_request.client_mode = TimestampMode::kGtm;
  EXPECT_GT(Ask(gtm_request).ts, 1'000'000'001u);
}

TEST_F(GtmServerTest, DualModeMakesGtmCommitsWaitTwiceTheErrorBound) {
  gtm_->SetMode(TimestampMode::kDual, 0);
  // Register the largest error bound seen in the transition window.
  GtmTimestampRequest dual;
  dual.client_mode = TimestampMode::kDual;
  dual.gclock_upper = 500;
  dual.error_bound = 80 * kMicrosecond;
  (void)Ask(dual);
  EXPECT_EQ(gtm_->max_error_bound(), 80 * kMicrosecond);

  GtmTimestampRequest commit;
  commit.client_mode = TimestampMode::kGtm;
  commit.is_commit = true;
  GtmTimestampReply reply = Ask(commit);
  EXPECT_FALSE(reply.aborted);
  EXPECT_EQ(reply.wait, 2 * 80 * kMicrosecond);  // Listing 1 safeguard
  // Begins do not wait.
  GtmTimestampRequest begin;
  begin.client_mode = TimestampMode::kGtm;
  EXPECT_EQ(Ask(begin).wait, 0);
}

TEST_F(GtmServerTest, GclockModeAbortsStaleGtmClients) {
  gtm_->SetMode(TimestampMode::kGclock, 0);
  GtmTimestampRequest request;
  request.client_mode = TimestampMode::kGtm;
  request.is_commit = true;
  GtmTimestampReply reply = Ask(request);
  EXPECT_TRUE(reply.aborted);
  EXPECT_EQ(gtm_->metrics().Get("gtm.stale_aborts"), 1);
  // DUAL stragglers are still served (they bridge safely).
  GtmTimestampRequest dual;
  dual.client_mode = TimestampMode::kDual;
  dual.gclock_upper = 42;
  reply = Ask(dual);
  EXPECT_FALSE(reply.aborted);
  EXPECT_GT(reply.ts, 42u);
}

TEST_F(GtmServerTest, FloorRaisesCounterMonotonically) {
  gtm_->SetMode(TimestampMode::kGtm, 1'000);
  GtmTimestampRequest request;
  request.client_mode = TimestampMode::kGtm;
  EXPECT_EQ(Ask(request).ts, 1'001u);
  // A lower floor never regresses the counter.
  gtm_->SetMode(TimestampMode::kGtm, 5);
  EXPECT_EQ(Ask(request).ts, 1'002u);
}

TEST_F(GtmServerTest, EnteringDualResetsErrorBoundTracking) {
  gtm_->SetMode(TimestampMode::kDual, 0);
  GtmTimestampRequest dual;
  dual.client_mode = TimestampMode::kDual;
  dual.error_bound = 90 * kMicrosecond;
  (void)Ask(dual);
  EXPECT_EQ(gtm_->max_error_bound(), 90 * kMicrosecond);
  // Leave and re-enter DUAL: a new transition window starts clean.
  gtm_->SetMode(TimestampMode::kGclock, 0);
  gtm_->SetMode(TimestampMode::kDual, 0);
  EXPECT_EQ(gtm_->max_error_bound(), 0);
}

TEST_F(GtmServerTest, MalformedRequestRejectedSafely) {
  // A garbage payload is rejected at the dispatcher with a Corruption error
  // envelope; the server never reaches the handler, so no timestamp is
  // issued or lost.
  Status status = Status::OK();
  bool done = false;
  auto call = [](rpc::RpcClient* client, Status* out,
                 bool* done) -> sim::Task<void> {
    auto response = co_await client->RawCall(0, kGtmTimestamp.name, "\x01");
    EXPECT_TRUE(response.ok());
    if (response.ok()) {
      auto decoded = rpc::DecodeEnvelope<GtmTimestampReply>(*response);
      *out = decoded.status();
    }
    *done = true;
  };
  sim_.Spawn(call(client_.get(), &status, &done));
  while (!done) sim_.RunFor(1 * kMillisecond);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(gtm_->counter(), 0u);  // nothing issued
}

}  // namespace
}  // namespace globaldb
