// Epoch/group-commit protocol tests (DESIGN.md §15): under
// TimestampMode::kEpoch committing transactions join the open epoch; every
// seal validates the members OCC-style (aborting conflicting members
// individually), fetches ONE commit timestamp for the whole epoch, and
// drives ONE grouped phase-2 per participant shard. These tests pin down
// the seal cadence and amortization (commit-timestamp RPCs ~ epochs, not
// transactions), the per-member OCC abort semantics within and across
// epochs, and the idempotence of duplicated kDnEpochCommit deliveries.

#include <gtest/gtest.h>

#include <vector>

#include "src/cluster/cluster.h"
#include "src/storage/schema.h"

namespace globaldb {
namespace {

TableSchema AccountSchema() {
  TableSchema schema;
  schema.name = "accounts";
  schema.columns = {{"id", ColumnType::kInt64}, {"val", ColumnType::kInt64}};
  schema.key_columns = {0};
  schema.distribution_column = 0;
  return schema;
}

class EpochCommitTest : public ::testing::Test {
 protected:
  EpochCommitTest() : sim_(7) {
    ClusterOptions options;
    options.network.nagle_enabled = false;
    options.initial_mode = TimestampMode::kEpoch;
    options.num_shards = 3;
    options.coordinator.epoch_interval = 2 * kMillisecond;
    cluster_ = std::make_unique<Cluster>(&sim_, options);
    cluster_->Start();

    bool ready = false;
    auto setup = [](Cluster* cluster, bool* ready) -> sim::Task<void> {
      EXPECT_TRUE((co_await cluster->cn(0).CreateTable(AccountSchema())).ok());
      *ready = true;
    };
    sim_.Spawn(setup(cluster_.get(), &ready));
    while (!ready) sim_.RunFor(10 * kMillisecond);
  }

  /// One writer transaction: upserts (id, val) and commits. Status of the
  /// commit lands in *out.
  sim::Task<void> WriteTxn(int cn_index, int64_t id, int64_t val, bool insert,
                           Status* out) {
    CoordinatorNode* cn = &cluster_->cn(cn_index);
    auto txn = co_await cn->Begin();
    EXPECT_TRUE(txn.ok());
    if (!txn.ok()) {
      *out = txn.status();
      co_return;
    }
    Row row = {id, val};
    Status s;
    if (insert) {
      s = co_await cn->Insert(&*txn, "accounts", row);
    } else {
      s = co_await cn->Update(&*txn, "accounts", row);
    }
    if (!s.ok()) {
      (void)co_await cn->Abort(&*txn);
      *out = s;
      co_return;
    }
    *out = co_await cn->Commit(&*txn);
  }

  /// Reads `id` through a fresh transaction; kInvalidValue when absent.
  int64_t ReadValue(int64_t id) {
    static constexpr int64_t kInvalidValue = -999;
    int64_t value = kInvalidValue;
    bool done = false;
    auto reader = [](Cluster* cluster, int64_t id, int64_t* value,
                     bool* done) -> sim::Task<void> {
      CoordinatorNode* cn = &cluster->cn(0);
      auto txn = co_await cn->Begin();
      EXPECT_TRUE(txn.ok());
      if (!txn.ok()) {
        *done = true;
        co_return;
      }
      Row key = {id};
      auto row = co_await cn->Get(&*txn, "accounts", key);
      EXPECT_TRUE(row.ok());
      if (row.ok() && row->has_value()) *value = std::get<int64_t>((**row)[1]);
      (void)co_await cn->Abort(&*txn);
      *done = true;
    };
    sim_.Spawn(reader(cluster_.get(), id, &value, &done));
    while (!done) sim_.RunFor(1 * kMillisecond);
    return value;
  }

  int64_t CnMetric(const char* name) {
    int64_t total = 0;
    for (size_t i = 0; i < cluster_->num_cns(); ++i) {
      total += cluster_->cn(i).metrics().Get(name);
    }
    return total;
  }

  sim::Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
};

// A burst of concurrent disjoint writers lands in a handful of epochs: all
// commit, and the epoch machinery charges ~one commit-timestamp RPC and one
// grouped phase-2 round per *epoch*, not per transaction.
TEST_F(EpochCommitTest, ConcurrentCommitsShareEpochGrantAndPhase2) {
  constexpr int kTxns = 24;
  std::vector<Status> results(kTxns, Status::Internal("pending"));
  for (int i = 0; i < kTxns; ++i) {
    sim_.Spawn(WriteTxn(0, 100 + i, i, /*insert=*/true, &results[i]));
  }
  sim_.RunFor(2 * kSecond);

  for (int i = 0; i < kTxns; ++i) {
    EXPECT_TRUE(results[i].ok()) << i << ": " << results[i].ToString();
    EXPECT_EQ(ReadValue(100 + i), i);
  }
  EXPECT_EQ(CnMetric("cn.epoch_commits"), kTxns);
  EXPECT_EQ(CnMetric("epoch.committed_members"), kTxns);
  EXPECT_EQ(CnMetric("epoch.occ_aborts"), 0);
  // The writers begin within ~one GTM round trip of each other, so they
  // resolve in very few epochs — each with exactly one timestamp grant.
  const int64_t seals = CnMetric("epoch.seals");
  EXPECT_GE(seals, 1);
  EXPECT_LE(CnMetric("epoch.commit_ts_rpcs"), seals);
  EXPECT_LE(CnMetric("epoch.commit_ts_rpcs"), 4);
  // Seal batches actually grouped members (no degenerate 1-txn epochs).
  EXPECT_GE(cluster_->cn(0).metrics().Hist("epoch.seal_batch_size").max(), 8);
}

// Two members of one epoch write the same key: OCC validation aborts only
// the later-admitted member; the earlier one and an unrelated member
// commit. SI is never at stake — the filter just keeps both writes out of
// one grouped prepare and preserves the epoch-serial order.
TEST_F(EpochCommitTest, SameEpochWriteConflictAbortsOnlyConflictingMember) {
  Status seeded = Status::Internal("pending");
  sim_.Spawn(WriteTxn(0, 1, 10, /*insert=*/true, &seeded));
  sim_.RunFor(1 * kSecond);
  ASSERT_TRUE(seeded.ok());

  Status a = Status::Internal("pending");
  Status b = Status::Internal("pending");
  Status c = Status::Internal("pending");
  sim_.Spawn(WriteTxn(0, 1, 111, /*insert=*/false, &a));
  sim_.Spawn(WriteTxn(0, 1, 222, /*insert=*/false, &b));
  sim_.Spawn(WriteTxn(0, 2, 333, /*insert=*/true, &c));
  sim_.RunFor(2 * kSecond);

  // Exactly one of the two same-key writers lost, the other won; the
  // disjoint member is untouched by its neighbors' conflict.
  EXPECT_NE(a.ok(), b.ok()) << "a=" << a.ToString() << " b=" << b.ToString();
  EXPECT_TRUE(c.ok()) << c.ToString();
  EXPECT_EQ(CnMetric("epoch.occ_aborts"), 1);
  const Status& loser = a.ok() ? b : a;
  EXPECT_EQ(loser.code(), StatusCode::kAborted);
  EXPECT_EQ(ReadValue(1), a.ok() ? 111 : 222);
  EXPECT_EQ(ReadValue(2), 333);
}

// A member whose plain snapshot read went stale — the key was committed by
// a later epoch after the member's snapshot — fails read-set validation at
// its own seal and aborts; nothing it wrote becomes visible.
TEST_F(EpochCommitTest, StaleReadFailsValidationAcrossEpochs) {
  Status seeded = Status::Internal("pending");
  sim_.Spawn(WriteTxn(0, 5, 100, /*insert=*/true, &seeded));
  sim_.RunFor(1 * kSecond);
  ASSERT_TRUE(seeded.ok());

  Status reader_commit = Status::Internal("pending");
  bool read_done = false;
  auto reader = [](Cluster* cluster, bool* read_done,
                   Status* out) -> sim::Task<void> {
    CoordinatorNode* cn = &cluster->cn(0);
    auto txn = co_await cn->Begin();
    EXPECT_TRUE(txn.ok());
    if (!txn.ok()) {
      *read_done = true;
      *out = txn.status();
      co_return;
    }
    Row key = {5};
    auto row = co_await cn->Get(&*txn, "accounts", key);
    EXPECT_TRUE(row.ok());
    *read_done = true;
    // Park long enough for the conflicting writer's epoch to commit, then
    // write a disjoint key — the stale read alone must doom the member.
    co_await cluster->simulator()->Sleep(500 * kMillisecond);
    Row disjoint = {6, 1};
    EXPECT_TRUE((co_await cn->Insert(&*txn, "accounts", disjoint)).ok());
    *out = co_await cn->Commit(&*txn);
  };
  sim_.Spawn(reader(cluster_.get(), &read_done, &reader_commit));
  while (!read_done) sim_.RunFor(1 * kMillisecond);

  Status writer = Status::Internal("pending");
  sim_.Spawn(WriteTxn(0, 5, 200, /*insert=*/false, &writer));
  sim_.RunFor(2 * kSecond);

  EXPECT_TRUE(writer.ok()) << writer.ToString();
  EXPECT_EQ(reader_commit.code(), StatusCode::kAborted)
      << reader_commit.ToString();
  EXPECT_EQ(ReadValue(5), 200);
  EXPECT_EQ(ReadValue(6), -999);  // the aborted member's write never lands
}

// A re-driven (duplicated) grouped phase-2 delivery is a per-member no-op:
// the data node answers OK from its decision memo without re-appending
// commit records, and a *conflicting* duplicate (claiming an abort for a
// committed member) fails loudly instead of corrupting state.
TEST_F(EpochCommitTest, DuplicatedEpochCommitDeliveryIsIdempotent) {
  Status committed = Status::Internal("pending");
  TxnId txn_id = kInvalidTxnId;
  auto writer = [](Cluster* cluster, TxnId* txn_id,
                   Status* out) -> sim::Task<void> {
    CoordinatorNode* cn = &cluster->cn(0);
    auto txn = co_await cn->Begin();
    EXPECT_TRUE(txn.ok());
    if (!txn.ok()) {
      *out = txn.status();
      co_return;
    }
    *txn_id = txn->id;
    Row row = {9, 90};
    EXPECT_TRUE((co_await cn->Insert(&*txn, "accounts", row)).ok());
    *out = co_await cn->Commit(&*txn);
  };
  sim_.Spawn(writer(cluster_.get(), &txn_id, &committed));
  sim_.RunFor(2 * kSecond);
  ASSERT_TRUE(committed.ok());
  ASSERT_NE(txn_id, kInvalidTxnId);

  const ShardId shard = RouteRowToShard(
      AccountSchema(), {9, 90}, static_cast<uint32_t>(cluster_->num_shards()));
  DataNode& dn = cluster_->data_node(shard);
  const int64_t commits_before = dn.metrics().Get("dn.epoch_member_commits");
  const int64_t dedup_before = dn.metrics().Get("dn.decision_dedup_hits");

  // Recover the member's commit timestamp from the owning CN's decision
  // cache — exactly what an in-doubt resolver would learn — and re-deliver
  // the grouped decision.
  rpc::RpcClient client(&cluster_->network(), Cluster::CnNodeId(0));
  bool done = false;
  auto redeliver = [](Cluster* cluster, rpc::RpcClient* client, NodeId dn_node,
                      TxnId txn_id, bool* done) -> sim::Task<void> {
    TxnOutcomeRequest lookup;
    lookup.txn = txn_id;
    auto outcome =
        co_await client->Call(Cluster::CnNodeId(0), kCnTxnOutcome, lookup);
    EXPECT_TRUE(outcome.ok());
    if (!outcome.ok()) co_return;
    EXPECT_EQ(outcome->outcome, TxnOutcome::kCommitted);
    if (outcome->outcome != TxnOutcome::kCommitted) co_return;

    EpochCommitRequest dup;
    dup.epoch = txn_id + (1ull << 20);  // a re-drive under a fresh epoch key
    dup.ts = outcome->ts;
    dup.commits.push_back(txn_id);
    auto replayed = co_await client->Call(dn_node, kDnEpochCommit, dup);
    EXPECT_TRUE(replayed.ok()) << replayed.status().ToString();

    // Conflicting duplicate: claiming the committed member aborted must be
    // rejected, never applied.
    EpochCommitRequest conflicting;
    conflicting.epoch = dup.epoch + 1;
    conflicting.ts = 0;
    conflicting.aborts.push_back(txn_id);
    auto rejected = co_await client->Call(dn_node, kDnEpochCommit,
                                          conflicting);
    EXPECT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
    *done = true;
  };
  sim_.Spawn(redeliver(cluster_.get(), &client,
                       cluster_->primary_node_id(shard), txn_id, &done));
  sim_.RunFor(2 * kSecond);
  ASSERT_TRUE(done);

  // Both duplicates answered from the memo; no commit was re-applied.
  EXPECT_EQ(dn.metrics().Get("dn.epoch_member_commits"), commits_before);
  EXPECT_GE(dn.metrics().Get("dn.decision_dedup_hits"), dedup_before + 2);
  EXPECT_EQ(ReadValue(9), 90);
}

}  // namespace
}  // namespace globaldb
