#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/sim/hardware_clock.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/txn/gtm_server.h"
#include "src/txn/timestamp_source.h"
#include "src/txn/transition.h"

namespace globaldb {
namespace {

constexpr NodeId kGtmNode = 0;
constexpr NodeId kCn1 = 1;
constexpr NodeId kCn2 = 2;
constexpr NodeId kCn3 = 3;

/// Three CNs + one GTM server on a 2-region network (CN3 remote).
class TimestampTest : public ::testing::Test {
 protected:
  TimestampTest()
      : sim_(7), net_(&sim_, sim::Topology::Uniform(2, 20 * kMillisecond),
                      NetOptions()) {
    net_.RegisterNode(kGtmNode, 0);
    net_.RegisterNode(kCn1, 0);
    net_.RegisterNode(kCn2, 0);
    net_.RegisterNode(kCn3, 1);
    gtm_ = std::make_unique<GtmServer>(&sim_, &net_, kGtmNode);
    for (NodeId cn : {kCn1, kCn2, kCn3}) {
      clocks_.push_back(
          std::make_unique<sim::HardwareClock>(&sim_, sim_.rng().Fork()));
      sources_.push_back(std::make_unique<TimestampSource>(
          &sim_, &net_, cn, kGtmNode, clocks_.back().get()));
    }
    coordinator_ = std::make_unique<TransitionCoordinator>(
        &sim_, &net_, kCn1, kGtmNode, std::vector<NodeId>{kCn1, kCn2, kCn3});
  }

  static sim::NetworkOptions NetOptions() {
    sim::NetworkOptions o;
    o.nagle_enabled = false;
    return o;
  }

  TimestampSource& src(int i) { return *sources_[i]; }

  sim::Simulator sim_;
  sim::Network net_;
  std::unique_ptr<GtmServer> gtm_;
  std::vector<std::unique_ptr<sim::HardwareClock>> clocks_;
  std::vector<std::unique_ptr<TimestampSource>> sources_;
  std::unique_ptr<TransitionCoordinator> coordinator_;
};

TEST_F(TimestampTest, GtmModeIssuesConsecutiveTimestamps) {
  std::vector<Timestamp> got;
  auto client = [&](TimestampSource* s) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      auto grant = co_await s->BeginTs(false);
      EXPECT_TRUE(grant.ok());
      got.push_back(grant->ts);
    }
  };
  sim_.Spawn(client(&src(0)));
  sim_.Run();
  ASSERT_EQ(got.size(), 5u);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i + 1);
}

TEST_F(TimestampTest, GtmTimestampsGloballyUniqueAcrossNodes) {
  std::vector<Timestamp> got;
  auto client = [&](TimestampSource* s, int n) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) {
      auto grant = co_await s->BeginTs(false);
      EXPECT_TRUE(grant.ok());
      got.push_back(grant->ts);
    }
  };
  for (int i = 0; i < 3; ++i) sim_.Spawn(client(&src(i), 20));
  sim_.Run();
  ASSERT_EQ(got.size(), 60u);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(std::unique(got.begin(), got.end()), got.end());
}

TEST_F(TimestampTest, RemoteCnPaysLatencyForGtmTimestamp) {
  SimTime elapsed_local = 0, elapsed_remote = 0;
  auto measure = [&](TimestampSource* s, SimTime* out) -> sim::Task<void> {
    const SimTime start = sim_.now();
    auto grant = co_await s->BeginTs(false);
    EXPECT_TRUE(grant.ok());
    *out = sim_.now() - start;
  };
  sim_.Spawn(measure(&src(0), &elapsed_local));
  sim_.Run();
  sim_.Spawn(measure(&src(2), &elapsed_remote));
  sim_.Run();
  EXPECT_LT(elapsed_local, 2 * kMillisecond);
  EXPECT_GE(elapsed_remote, 20 * kMillisecond);  // RTT to the GTM server
}

TEST_F(TimestampTest, GclockExternalConsistencyAcrossNodes) {
  for (auto& s : sources_) s->SetMode(TimestampMode::kGclock);
  // Commit on node 0, then begin on node 1 strictly after the commit
  // completes: R.1 requires begin_ts >= commit_ts.
  Timestamp commit_ts = 0;
  Timestamp begin_ts = 0;
  auto scenario = [&]() -> sim::Task<void> {
    auto c = co_await src(0).CommitTs(TimestampMode::kGclock);
    EXPECT_TRUE(c.ok());
    commit_ts = *c;
    auto b = co_await src(1).BeginTs(false);
    EXPECT_TRUE(b.ok());
    begin_ts = b->ts;
  };
  sim_.Spawn(scenario());
  sim_.Run();
  EXPECT_GT(begin_ts, 0u);
  EXPECT_GE(begin_ts, commit_ts);
}

TEST_F(TimestampTest, GclockExternalConsistencyProperty) {
  for (auto& s : sources_) s->SetMode(TimestampMode::kGclock);
  // Many commits on random nodes; every commit's timestamp must exceed all
  // commits that finished (in real time) before it started.
  struct Event {
    SimTime start, end;
    Timestamp ts;
  };
  std::vector<Event> events;
  auto client = [&](int node, int n) -> sim::Task<void> {
    Rng rng(node + 100);
    for (int i = 0; i < n; ++i) {
      co_await sim_.Sleep(rng.UniformRange(0, 200 * kMicrosecond));
      Event e;
      e.start = sim_.now();
      auto c = co_await src(node).CommitTs(TimestampMode::kGclock);
      EXPECT_TRUE(c.ok());
      e.end = sim_.now();
      e.ts = *c;
      events.push_back(e);
    }
  };
  for (int node = 0; node < 3; ++node) sim_.Spawn(client(node, 50));
  sim_.Run();
  ASSERT_EQ(events.size(), 150u);
  for (const Event& a : events) {
    for (const Event& b : events) {
      if (a.end < b.start) {
        EXPECT_LT(a.ts, b.ts) << "commit finished before another began but "
                                 "got a larger timestamp";
      }
    }
  }
}

TEST_F(TimestampTest, GclockCommitWaitsOutUncertainty) {
  src(0).SetMode(TimestampMode::kGclock);
  SimTime elapsed = 0;
  auto measure = [&]() -> sim::Task<void> {
    const SimTime start = sim_.now();
    auto c = co_await src(0).CommitTs(TimestampMode::kGclock);
    EXPECT_TRUE(c.ok());
    elapsed = sim_.now() - start;
    // After the wait, true time must have passed the timestamp.
    EXPECT_GT(sim_.now(), static_cast<SimTime>(*c));
  };
  sim_.Spawn(measure());
  sim_.Run();
  // The wait is roughly the error bound (~60us), far below an RPC to GTM.
  EXPECT_LE(elapsed, 1 * kMillisecond);
}

TEST_F(TimestampTest, SingleShardBypassUsesLastCommitted) {
  src(0).SetMode(TimestampMode::kGclock);
  src(0).RecordCommitted(123456789);
  Timestamp ts = 0;
  auto run = [&]() -> sim::Task<void> {
    auto grant = co_await src(0).BeginTs(/*single_shard_read=*/true);
    EXPECT_TRUE(grant.ok());
    ts = grant->ts;
  };
  sim_.Spawn(run());
  sim_.Run();
  EXPECT_EQ(ts, 123456789u);
  EXPECT_EQ(src(0).metrics().Get("ts.single_shard_bypass"), 1);
}

TEST_F(TimestampTest, TransitionToGclockKeepsTimestampsMonotonic) {
  // Issue timestamps continuously while the coordinator flips the cluster
  // GTM -> GClock. Every commit must see a timestamp larger than commits
  // that finished before it started (external consistency through the
  // transition), and no transaction may observe a non-monotonic snapshot.
  struct Event {
    SimTime start, end;
    Timestamp ts;
  };
  std::vector<Event> events;
  bool done = false;
  auto client = [&](int node) -> sim::Task<void> {
    Rng rng(node + 7);
    while (!done) {
      co_await sim_.Sleep(rng.UniformRange(100 * kMicrosecond,
                                           2 * kMillisecond));
      Event e;
      e.start = sim_.now();
      auto grant = co_await src(node).BeginTs(false);
      if (!grant.ok()) continue;  // begin refused during switch: retry
      auto c = co_await src(node).CommitTs(grant->mode);
      if (!c.ok()) continue;  // stale GTM txn aborted: acceptable
      e.end = sim_.now();
      e.ts = *c;
      src(node).RecordCommitted(*c);
      events.push_back(e);
    }
  };
  auto control = [&]() -> sim::Task<void> {
    co_await sim_.Sleep(50 * kMillisecond);
    auto r = co_await coordinator_->SwitchToGclock();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    co_await sim_.Sleep(50 * kMillisecond);
    done = true;
  };
  for (int node = 0; node < 3; ++node) sim_.Spawn(client(node));
  sim_.Spawn(control());
  sim_.Run();

  ASSERT_GT(events.size(), 20u);
  EXPECT_EQ(gtm_->mode(), TimestampMode::kGclock);
  for (auto& s : sources_) EXPECT_EQ(s->mode(), TimestampMode::kGclock);
  int violations = 0;
  for (const Event& a : events) {
    for (const Event& b : events) {
      if (a.end < b.start && a.ts >= b.ts) ++violations;
    }
  }
  EXPECT_EQ(violations, 0);
}

TEST_F(TimestampTest, StaleGtmTransactionAbortsAfterSwitch) {
  Status commit_status = Status::OK();
  auto scenario = [&]() -> sim::Task<void> {
    // Begin a GTM transaction, then flip the whole cluster to GClock while
    // it is still running.
    auto grant = co_await src(1).BeginTs(false);
    EXPECT_TRUE(grant.ok());
    EXPECT_EQ(grant->mode, TimestampMode::kGtm);
    auto r = co_await coordinator_->SwitchToGclock();
    EXPECT_TRUE(r.ok());
    auto c = co_await src(1).CommitTs(grant->mode);
    commit_status = c.ok() ? Status::OK() : c.status();
  };
  sim_.Spawn(scenario());
  sim_.Run();
  EXPECT_TRUE(commit_status.IsAborted()) << commit_status.ToString();
}

TEST_F(TimestampTest, TransitionBackToGtmNeverAborts) {
  // GClock -> GTM: the paper says no transactions need to abort. Run
  // traffic across the switch and count aborts.
  int aborts = 0;
  int commits = 0;
  bool done = false;
  bool started = false;  // traffic starts once the cluster is in GClock mode
  auto client = [&](int node) -> sim::Task<void> {
    while (!done) {
      co_await sim_.Sleep(500 * kMicrosecond);
      if (!started) continue;
      auto grant = co_await src(node).BeginTs(false);
      if (!grant.ok()) {
        ++aborts;
        continue;
      }
      auto c = co_await src(node).CommitTs(grant->mode);
      if (c.ok()) {
        ++commits;
        src(node).RecordCommitted(*c);
      } else {
        ++aborts;
      }
    }
  };
  auto control = [&]() -> sim::Task<void> {
    // First move to GClock, then back to GTM under load.
    auto up = co_await coordinator_->SwitchToGclock();
    EXPECT_TRUE(up.ok());
    started = true;
    co_await sim_.Sleep(20 * kMillisecond);
    auto down = co_await coordinator_->SwitchToGtm();
    EXPECT_TRUE(down.ok()) << down.status().ToString();
    co_await sim_.Sleep(20 * kMillisecond);
    done = true;
  };
  for (int node = 0; node < 3; ++node) sim_.Spawn(client(node));
  sim_.Spawn(control());
  sim_.Run();
  EXPECT_EQ(gtm_->mode(), TimestampMode::kGtm);
  EXPECT_GT(commits, 10);
  EXPECT_EQ(aborts, 0);
}

TEST_F(TimestampTest, GtmCounterFlooredAboveGclockTimestamps) {
  // After GClock -> GTM, new GTM timestamps must exceed all GClock ones.
  Timestamp last_gclock = 0;
  Timestamp first_gtm = 0;
  auto scenario = [&]() -> sim::Task<void> {
    auto up = co_await coordinator_->SwitchToGclock();
    EXPECT_TRUE(up.ok());
    auto c = co_await src(2).CommitTs(TimestampMode::kGclock);
    EXPECT_TRUE(c.ok());
    last_gclock = *c;
    src(2).RecordCommitted(*c);
    auto down = co_await coordinator_->SwitchToGtm();
    EXPECT_TRUE(down.ok());
    auto g = co_await src(0).BeginTs(false);
    EXPECT_TRUE(g.ok());
    first_gtm = g->ts;
  };
  sim_.Spawn(scenario());
  sim_.Run();
  EXPECT_GT(first_gtm, last_gclock);
}

TEST_F(TimestampTest, DualModeBridgesBothTimestampKinds) {
  // Put everything in DUAL and check issued timestamps exceed both the GTM
  // counter and the clock upper bound at request time.
  auto setup = [&]() -> sim::Task<void> {
    auto r1 = co_await src(0).rpc_client().Call(
        kGtmNode, kGtmSetMode, SetModeRequest{TimestampMode::kDual, 0});
    EXPECT_TRUE(r1.ok());
    src(0).SetMode(TimestampMode::kDual);
    const Timestamp clock_upper = clocks_[0]->ReadUpper();
    auto grant = co_await src(0).BeginTs(false);
    EXPECT_TRUE(grant.ok());
    EXPECT_GT(grant->ts, clock_upper);
  };
  sim_.Spawn(setup());
  sim_.Run();
}

TEST_F(TimestampTest, ClockFaultFallbackScenario) {
  // A broken clock sync grows error bounds; the operator switches the
  // cluster to GTM mode and traffic continues (the paper's fault-tolerance
  // story). Then the clock recovers and the cluster switches back.
  auto scenario = [&]() -> sim::Task<void> {
    auto up = co_await coordinator_->SwitchToGclock();
    EXPECT_TRUE(up.ok());
    clocks_[1]->set_sync_healthy(false);  // fault injection on CN2
    co_await sim_.Sleep(2 * kSecond);
    EXPECT_GT(clocks_[1]->ErrorBound(), 100 * kMicrosecond);
    auto down = co_await coordinator_->SwitchToGtm();
    EXPECT_TRUE(down.ok());
    // Traffic under GTM mode works fine.
    auto g = co_await src(1).BeginTs(false);
    EXPECT_TRUE(g.ok());
    auto c = co_await src(1).CommitTs(g->mode);
    EXPECT_TRUE(c.ok());
    // Clock recovers; switch back to GClock.
    clocks_[1]->set_sync_healthy(true);
    co_await sim_.Sleep(10 * kMillisecond);
    auto up2 = co_await coordinator_->SwitchToGclock();
    EXPECT_TRUE(up2.ok());
    auto c2 = co_await src(1).CommitTs(TimestampMode::kGclock);
    EXPECT_TRUE(c2.ok());
    EXPECT_GT(*c2, *c);
  };
  sim_.Spawn(scenario());
  sim_.Run();
  EXPECT_EQ(gtm_->mode(), TimestampMode::kGclock);
}

}  // namespace
}  // namespace globaldb
