// GTM timestamp coalescing (DESIGN.md §10): concurrent begin/commit
// requests on one CN share a single in-flight kGtmTimestamp RPC, the
// server grants a contiguous range, and the source fans it out in arrival
// order. These tests pin down the RPC amortization, strict monotonicity
// of the fanned-out grants, and the per-waiter DUAL wait semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/sim/hardware_clock.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/txn/gtm_server.h"
#include "src/txn/timestamp_source.h"

namespace globaldb {
namespace {

constexpr NodeId kGtmNode = 0;
constexpr NodeId kCn1 = 1;
constexpr NodeId kCn2 = 2;

/// Two CNs + the GTM server on a 2-region network (20 ms inter-region).
class GtmCoalesceTest : public ::testing::Test {
 protected:
  GtmCoalesceTest()
      : sim_(11), net_(&sim_, sim::Topology::Uniform(2, 20 * kMillisecond),
                       NetOptions()) {
    net_.RegisterNode(kGtmNode, 0);
    net_.RegisterNode(kCn1, 0);
    net_.RegisterNode(kCn2, 1);
    gtm_ = std::make_unique<GtmServer>(&sim_, &net_, kGtmNode);
    for (NodeId cn : {kCn1, kCn2}) {
      clocks_.push_back(
          std::make_unique<sim::HardwareClock>(&sim_, sim_.rng().Fork()));
      sources_.push_back(std::make_unique<TimestampSource>(
          &sim_, &net_, cn, kGtmNode, clocks_.back().get()));
    }
  }

  static sim::NetworkOptions NetOptions() {
    sim::NetworkOptions o;
    o.nagle_enabled = false;
    return o;
  }

  TimestampSource& src(int i) { return *sources_[i]; }

  sim::Simulator sim_;
  sim::Network net_;
  std::unique_ptr<GtmServer> gtm_;
  std::vector<std::unique_ptr<sim::HardwareClock>> clocks_;
  std::vector<std::unique_ptr<TimestampSource>> sources_;
};

// 16 concurrent begins on one CN collapse into at most 2 GTM RPCs (the
// first client's pump departs alone before the rest enqueue — Spawn runs
// eagerly), and the fanned-out grants are strictly monotonic in arrival
// order with no duplicates.
TEST_F(GtmCoalesceTest, ConcurrentBeginsShareOneRpc) {
  std::vector<Timestamp> got;
  auto client = [&](TimestampSource* s) -> sim::Task<void> {
    auto grant = co_await s->BeginTs(false);
    EXPECT_TRUE(grant.ok());
    if (grant.ok()) got.push_back(grant->ts);
  };
  for (int i = 0; i < 16; ++i) sim_.Spawn(client(&src(0)));
  sim_.Run();

  ASSERT_EQ(got.size(), 16u);
  for (size_t i = 1; i < got.size(); ++i) EXPECT_GT(got[i], got[i - 1]);
  EXPECT_LE(src(0).metrics().Get("ts.gtm_rpcs"), 2);
  EXPECT_LE(gtm_->metrics().Get("gtm.timestamp_requests"), 2);
  EXPECT_GE(src(0).metrics().Hist("ts.coalesce_batch").max(), 8);
  EXPECT_EQ(gtm_->metrics().Get("gtm.timestamps_granted"), 16);
}

// Grants stay globally unique and per-node monotonic when two CNs coalesce
// independently against the same server, across several waves.
TEST_F(GtmCoalesceTest, GrantsUniqueAcrossNodesAndWaves) {
  std::vector<Timestamp> node0, node1;
  auto client = [&](TimestampSource* s,
                    std::vector<Timestamp>* out) -> sim::Task<void> {
    auto grant = co_await s->BeginTs(false);
    EXPECT_TRUE(grant.ok());
    if (grant.ok()) out->push_back(grant->ts);
  };
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 8; ++i) {
      sim_.Spawn(client(&src(0), &node0));
      sim_.Spawn(client(&src(1), &node1));
    }
    sim_.RunFor(200 * kMillisecond);
  }
  ASSERT_EQ(node0.size(), 24u);
  ASSERT_EQ(node1.size(), 24u);
  for (size_t i = 1; i < node0.size(); ++i) EXPECT_GT(node0[i], node0[i - 1]);
  for (size_t i = 1; i < node1.size(); ++i) EXPECT_GT(node1[i], node1[i - 1]);
  std::vector<Timestamp> all = node0;
  all.insert(all.end(), node1.begin(), node1.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
  // Each wave on each node needs at most 2 RPCs.
  EXPECT_LE(src(0).metrics().Get("ts.gtm_rpcs"), 6);
  EXPECT_LE(src(1).metrics().Get("ts.gtm_rpcs"), 6);
}

// With coalescing off the source reverts to one RPC per request.
TEST_F(GtmCoalesceTest, DisabledCoalescingIssuesOneRpcPerRequest) {
  src(0).set_coalescing(false);
  auto client = [&](TimestampSource* s) -> sim::Task<void> {
    auto grant = co_await s->BeginTs(false);
    EXPECT_TRUE(grant.ok());
  };
  for (int i = 0; i < 8; ++i) sim_.Spawn(client(&src(0)));
  sim_.Run();
  EXPECT_EQ(src(0).metrics().Get("ts.gtm_rpcs"), 8);
  EXPECT_EQ(gtm_->metrics().Get("gtm.timestamp_requests"), 8);
}

// DUAL-mode commits coalesced into one RPC: every grant must exceed the
// GClock upper bound its waiter captured at enqueue (we check against the
// pre-spawn upper, which lower-bounds all of them), the commit wait must
// still run per waiter (clock lower bound past the grant on return), and
// the batch still costs at most 2 RPCs.
TEST_F(GtmCoalesceTest, DualCoalescedCommitsKeepPerWaiterWait) {
  gtm_->SetMode(TimestampMode::kDual, 0);
  const Timestamp pre_upper =
      static_cast<Timestamp>(clocks_[0]->ReadUpper());
  std::vector<Timestamp> got;
  int waits_done = 0;
  auto client = [&](TimestampSource* s) -> sim::Task<void> {
    auto ts = co_await s->CommitTs(TimestampMode::kDual);
    EXPECT_TRUE(ts.ok());
    if (!ts.ok()) co_return;
    got.push_back(*ts);
    const SimTime lower = clocks_[0]->Read() - clocks_[0]->ErrorBound();
    EXPECT_GT(lower, static_cast<SimTime>(*ts));
    ++waits_done;
  };
  for (int i = 0; i < 8; ++i) sim_.Spawn(client(&src(0)));
  sim_.Run();

  ASSERT_EQ(got.size(), 8u);
  EXPECT_EQ(waits_done, 8);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_GT(got[i], pre_upper);
  for (size_t i = 1; i < got.size(); ++i) EXPECT_GT(got[i], got[i - 1]);
  EXPECT_LE(src(0).metrics().Get("ts.gtm_rpcs"), 2);
}

// Listing 1: a GTM-mode commit during the DUAL window waits out 2x the max
// error bound. Begins can never inherit that wait (or a commit batch's
// abort verdict): batches are homogeneous in (mode, is_commit), so begins
// and commits ride separate RPCs and each class amortizes independently.
TEST_F(GtmCoalesceTest, GtmCommitDualWaitAppliesOnlyToCommitBatches) {
  gtm_->SetMode(TimestampMode::kDual, 0);
  // Seed the server's max error bound with one DUAL commit from the other
  // CN (GTM-mode requests carry no error bound of their own).
  bool seeded = false;
  auto seed = [&]() -> sim::Task<void> {
    auto ts = co_await src(1).CommitTs(TimestampMode::kDual);
    EXPECT_TRUE(ts.ok());
    seeded = true;
  };
  sim_.Spawn(seed());
  while (!seeded) sim_.RunFor(10 * kMillisecond);

  std::vector<SimTime> begin_done, commit_done;
  auto begin_client = [&]() -> sim::Task<void> {
    auto grant = co_await src(0).BeginTs(false);
    EXPECT_TRUE(grant.ok());
    begin_done.push_back(sim_.now());
  };
  auto commit_client = [&]() -> sim::Task<void> {
    auto ts = co_await src(0).CommitTs(TimestampMode::kGtm);
    EXPECT_TRUE(ts.ok());
    commit_done.push_back(sim_.now());
  };
  // Per class, the first client's pump departs alone (eager spawn) and the
  // rest share the follow-up RPC: 4 begins + 4 commits cost at most 2 RPCs
  // each, never mixed.
  for (int i = 0; i < 4; ++i) sim_.Spawn(begin_client());
  for (int i = 0; i < 4; ++i) sim_.Spawn(commit_client());
  sim_.Run();

  ASSERT_EQ(begin_done.size(), 4u);
  ASSERT_EQ(commit_done.size(), 4u);
  // Exactly the 4 commits slept the 2x-bound wait; the begins returned as
  // soon as their own (commit-free) RPCs landed.
  EXPECT_EQ(src(0).metrics().Get("ts.dual_commit_waits"), 4);
  EXPECT_LE(src(0).metrics().Get("ts.gtm_rpcs"), 4);
}

// Range-consumption contract (messages.h, DESIGN.md §10/§15): a granted
// range (ts - count, ts] binds each value to exactly one waiter at fan-out
// time. A waiter whose transaction (or epoch member) aborts simply abandons
// its value — nothing re-enters a pool, so later grants are strictly above
// every earlier one and abandoned values stay permanent gaps. Epoch-mode
// commit grants ride the same machinery (remapped to the GTM counter), so
// the waves mix begin, GTM-commit, and epoch-commit grants.
TEST_F(GtmCoalesceTest, AbandonedGrantsAreNeverReissued) {
  std::vector<std::vector<Timestamp>> waves;
  auto client = [&](TimestampSource* s, TimestampMode mode, bool commit,
                    std::vector<Timestamp>* out) -> sim::Task<void> {
    if (commit) {
      auto ts = co_await s->CommitTs(mode);
      EXPECT_TRUE(ts.ok());
      if (ts.ok()) out->push_back(*ts);
      co_return;
    }
    auto grant = co_await s->BeginTs(false);
    EXPECT_TRUE(grant.ok());
    if (grant.ok()) out->push_back(grant->ts);
  };
  for (int wave = 0; wave < 4; ++wave) {
    waves.emplace_back();
    std::vector<Timestamp>* out = &waves.back();
    // Each wave coalesces 12 waiters; every odd-indexed waiter's value is
    // "abandoned" (its transaction aborts after the grant) — from the
    // server's perspective the two are indistinguishable, which is the
    // point: abandonment needs no protocol action.
    for (int i = 0; i < 6; ++i) {
      sim_.Spawn(client(&src(0), TimestampMode::kEpoch, true, out));
      sim_.Spawn(client(&src(0), TimestampMode::kGtm, i % 2 == 0, out));
    }
    sim_.RunFor(200 * kMillisecond);
    ASSERT_EQ(out->size(), 12u);
  }

  // Globally unique, and every later wave sits strictly above the maximum
  // of all earlier waves — the gaps left by abandoned values are permanent.
  std::vector<Timestamp> all;
  Timestamp prior_max = 0;
  for (const auto& wave : waves) {
    const Timestamp wave_min = *std::min_element(wave.begin(), wave.end());
    EXPECT_GT(wave_min, prior_max);
    prior_max = std::max(
        prior_max, *std::max_element(wave.begin(), wave.end()));
    all.insert(all.end(), wave.begin(), wave.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
}

}  // namespace
}  // namespace globaldb
