// Parameterized properties that must hold in every timestamp mode (GTM,
// DUAL, GClock): uniqueness of commit timestamps, per-node monotonicity,
// and external consistency (R.1: a transaction that begins after another
// committed, in real time, sees a larger-or-equal timestamp).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/sim/hardware_clock.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/txn/gtm_server.h"
#include "src/txn/timestamp_source.h"

namespace globaldb {
namespace {

class TimestampModeTest : public ::testing::TestWithParam<TimestampMode> {
 protected:
  TimestampModeTest()
      : sim_(101), net_(&sim_, sim::Topology::Uniform(2, 10 * kMillisecond),
                        Options()) {
    net_.RegisterNode(0, 0);
    gtm_ = std::make_unique<GtmServer>(&sim_, &net_, 0);
    gtm_->SetMode(GetParam() == TimestampMode::kGclock ? TimestampMode::kGtm
                                                       : GetParam(),
                  0);
    for (NodeId cn = 1; cn <= 3; ++cn) {
      net_.RegisterNode(cn, cn == 3 ? 1 : 0);
      clocks_.push_back(
          std::make_unique<sim::HardwareClock>(&sim_, sim_.rng().Fork()));
      sources_.push_back(std::make_unique<TimestampSource>(
          &sim_, &net_, cn, 0, clocks_.back().get()));
      sources_.back()->SetMode(GetParam());
    }
  }

  static sim::NetworkOptions Options() {
    sim::NetworkOptions o;
    o.nagle_enabled = false;
    return o;
  }

  sim::Simulator sim_;
  sim::Network net_;
  std::unique_ptr<GtmServer> gtm_;
  std::vector<std::unique_ptr<sim::HardwareClock>> clocks_;
  std::vector<std::unique_ptr<TimestampSource>> sources_;
};

TEST_P(TimestampModeTest, CommitTimestampsUniqueAndPositive) {
  // GTM and DUAL issue globally unique timestamps (a central counter).
  // GClock timestamps are unique per node (clock reads are strictly
  // monotonic locally); two nodes may legitimately tie, which MVCC
  // visibility tolerates.
  std::vector<std::vector<Timestamp>> issued(3);
  auto client = [&](int node, int n) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) {
      auto ts = co_await sources_[node]->CommitTs(GetParam());
      EXPECT_TRUE(ts.ok());
      if (ts.ok()) issued[node].push_back(*ts);
      co_await sim_.Sleep(sim_.rng().Uniform(300 * kMicrosecond));
    }
  };
  for (int node = 0; node < 3; ++node) sim_.Spawn(client(node, 30));
  sim_.Run();
  std::vector<Timestamp> all;
  for (int node = 0; node < 3; ++node) {
    ASSERT_EQ(issued[node].size(), 30u);
    std::vector<Timestamp> sorted = issued[node];
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
        << "duplicate per-node timestamps, node " << node;
    for (Timestamp ts : issued[node]) {
      EXPECT_GT(ts, 0u);
      all.push_back(ts);
    }
  }
  if (GetParam() != TimestampMode::kGclock) {
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::unique(all.begin(), all.end()), all.end())
        << "duplicate global timestamps in mode "
        << TimestampModeName(GetParam());
  }
}

TEST_P(TimestampModeTest, PerNodeMonotonic) {
  auto client = [&](int node) -> sim::Task<void> {
    Timestamp prev = 0;
    for (int i = 0; i < 40; ++i) {
      auto begin = co_await sources_[node]->BeginTs(false);
      EXPECT_TRUE(begin.ok());
      auto commit = co_await sources_[node]->CommitTs(GetParam());
      EXPECT_TRUE(commit.ok());
      if (commit.ok()) {
        EXPECT_GT(*commit, prev) << "node " << node;
        prev = *commit;
        sources_[node]->RecordCommitted(*commit);
      }
    }
  };
  for (int node = 0; node < 3; ++node) sim_.Spawn(client(node));
  sim_.Run();
}

TEST_P(TimestampModeTest, ExternalConsistencyAcrossNodes) {
  struct Event {
    SimTime start, end;
    Timestamp ts;
  };
  std::vector<Event> events;
  auto client = [&](int node) -> sim::Task<void> {
    Rng rng(node + 1);
    for (int i = 0; i < 30; ++i) {
      co_await sim_.Sleep(rng.UniformRange(0, 2 * kMillisecond));
      Event e;
      e.start = sim_.now();
      auto ts = co_await sources_[node]->CommitTs(GetParam());
      EXPECT_TRUE(ts.ok());
      if (!ts.ok()) continue;
      e.end = sim_.now();
      e.ts = *ts;
      events.push_back(e);
    }
  };
  for (int node = 0; node < 3; ++node) sim_.Spawn(client(node));
  sim_.Run();
  int violations = 0;
  for (const Event& a : events) {
    for (const Event& b : events) {
      if (a.end < b.start && a.ts >= b.ts) ++violations;
    }
  }
  EXPECT_EQ(violations, 0) << "R.1 violated in mode "
                           << TimestampModeName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllModes, TimestampModeTest,
                         ::testing::Values(TimestampMode::kGtm,
                                           TimestampMode::kDual,
                                           TimestampMode::kGclock),
                         [](const auto& info) {
                           return std::string(TimestampModeName(info.param));
                         });

}  // namespace
}  // namespace globaldb
