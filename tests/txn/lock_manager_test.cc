#include "src/txn/lock_manager.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace globaldb {
namespace {

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() : sim_(3), locks_(&sim_, /*timeout=*/100 * kMillisecond) {}

  // Note: coroutine parameters must be taken by value — a reference
  // parameter would dangle once the caller's temporary dies at the first
  // suspension point.
  sim::Task<void> AcquireAt(SimDuration delay, TxnId txn, RowKey key,
                            std::vector<std::pair<TxnId, Status>>* log) {
    co_await sim_.Sleep(delay);
    Status s = co_await locks_.Acquire(txn, 1, key);
    log->push_back({txn, s});
  }

  sim::Simulator sim_;
  LockManager locks_;
};

TEST_F(LockManagerTest, ImmediateGrantWhenFree) {
  std::vector<std::pair<TxnId, Status>> log;
  sim_.Spawn(AcquireAt(0, 1, "k", &log));
  sim_.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(log[0].second.ok());
  EXPECT_EQ(locks_.HeldCount(1), 1u);
}

TEST_F(LockManagerTest, ReentrantAcquire) {
  std::vector<std::pair<TxnId, Status>> log;
  sim_.Spawn(AcquireAt(0, 1, "k", &log));
  sim_.Spawn(AcquireAt(1, 1, "k", &log));
  sim_.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[1].second.ok());
  EXPECT_EQ(locks_.HeldCount(1), 1u);  // still just one lock
}

TEST_F(LockManagerTest, WaiterGrantedOnRelease) {
  std::vector<std::pair<TxnId, Status>> log;
  sim_.Spawn(AcquireAt(0, 1, "k", &log));
  sim_.Spawn(AcquireAt(1000, 2, "k", &log));
  sim_.Schedule(50 * kMillisecond, [&] { locks_.ReleaseAll(1); });
  sim_.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[1].second.ok());
  EXPECT_EQ(log[1].first, 2u);
  EXPECT_EQ(locks_.HeldCount(1), 0u);
  EXPECT_EQ(locks_.HeldCount(2), 1u);
}

TEST_F(LockManagerTest, FifoOrderAmongWaiters) {
  std::vector<std::pair<TxnId, Status>> log;
  sim_.Spawn(AcquireAt(0, 1, "k", &log));
  sim_.Spawn(AcquireAt(10, 2, "k", &log));
  sim_.Spawn(AcquireAt(20, 3, "k", &log));
  sim_.Schedule(30 * kMillisecond, [&] { locks_.ReleaseAll(1); });
  sim_.Schedule(60 * kMillisecond, [&] { locks_.ReleaseAll(2); });
  sim_.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[1].first, 2u);  // txn 2 queued first, granted first
  EXPECT_EQ(log[2].first, 3u);
  EXPECT_TRUE(log[2].second.ok());
}

TEST_F(LockManagerTest, TimeoutAborts) {
  std::vector<std::pair<TxnId, Status>> log;
  sim_.Spawn(AcquireAt(0, 1, "k", &log));
  sim_.Spawn(AcquireAt(10, 2, "k", &log));  // holder never releases
  sim_.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[1].second.IsTimedOut());
  EXPECT_EQ(locks_.metrics().Get("lock.timeouts"), 1);
}

TEST_F(LockManagerTest, TimedOutWaiterSkippedOnRelease) {
  std::vector<std::pair<TxnId, Status>> log;
  sim_.Spawn(AcquireAt(0, 1, "k", &log));
  sim_.Spawn(AcquireAt(10, 2, "k", &log));   // will time out at ~100ms
  sim_.Spawn(AcquireAt(150 * kMillisecond, 3, "k", &log));
  sim_.Schedule(200 * kMillisecond, [&] { locks_.ReleaseAll(1); });
  sim_.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_TRUE(log[1].second.IsTimedOut());
  EXPECT_TRUE(log[2].second.ok());  // txn 3 gets it, skipping dead waiter 2
  EXPECT_EQ(locks_.HeldCount(3), 1u);
}

TEST_F(LockManagerTest, DistinctKeysIndependent) {
  std::vector<std::pair<TxnId, Status>> log;
  sim_.Spawn(AcquireAt(0, 1, "a", &log));
  sim_.Spawn(AcquireAt(1, 2, "b", &log));
  sim_.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].second.ok());
  EXPECT_TRUE(log[1].second.ok());
}

TEST_F(LockManagerTest, SameKeyDifferentTablesIndependent) {
  std::vector<std::pair<TxnId, Status>> log;
  auto acquire = [this, &log](TxnId txn, TableId table) -> sim::Task<void> {
    Status s = co_await locks_.Acquire(txn, table, "k");
    log.push_back({txn, s});
  };
  sim_.Spawn(acquire(1, 1));
  sim_.Spawn(acquire(2, 2));
  sim_.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].second.ok());
  EXPECT_TRUE(log[1].second.ok());
}

TEST_F(LockManagerTest, DeadlockResolvedByTimeout) {
  // txn1 holds a, wants b; txn2 holds b, wants a.
  std::vector<std::pair<TxnId, Status>> log;
  auto txn1 = [&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await locks_.Acquire(1, 1, "a")).ok());
    co_await sim_.Sleep(10);
    Status s = co_await locks_.Acquire(1, 1, "b");
    log.push_back({1, s});
    if (!s.ok()) locks_.ReleaseAll(1);
  };
  auto txn2 = [&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await locks_.Acquire(2, 1, "b")).ok());
    co_await sim_.Sleep(10);
    Status s = co_await locks_.Acquire(2, 1, "a");
    log.push_back({2, s});
    if (!s.ok()) locks_.ReleaseAll(2);
  };
  sim_.Spawn(txn1());
  sim_.Spawn(txn2());
  sim_.Run();
  ASSERT_EQ(log.size(), 2u);
  // Both time out (simple policy); importantly, the system does not hang.
  int timeouts = 0;
  for (auto& [txn, s] : log) {
    if (s.IsTimedOut()) ++timeouts;
  }
  EXPECT_GE(timeouts, 1);
}

TEST_F(LockManagerTest, ReleaseAllWithoutLocksIsNoop) {
  locks_.ReleaseAll(42);
  EXPECT_EQ(locks_.TotalHeld(), 0u);
}

}  // namespace
}  // namespace globaldb
