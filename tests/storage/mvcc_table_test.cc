#include "src/storage/mvcc_table.h"

#include <gtest/gtest.h>

namespace globaldb {
namespace {

class MvccTableTest : public ::testing::Test {
 protected:
  MvccTable table_{1};
};

TEST_F(MvccTableTest, InsertInvisibleUntilCommit) {
  ASSERT_TRUE(table_.Insert("k", "v1", /*txn=*/10).ok());
  // Not visible to other snapshots while provisional.
  ReadResult r = table_.Read("k", /*snapshot=*/1000, /*reader=*/20);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.provisional_txn, 10u);
  // Visible to the writer itself.
  r = table_.Read("k", 1000, 10);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.value, "v1");
  // After commit at ts=100: visible at snapshots >= 100.
  table_.CommitTxn(10, 100);
  EXPECT_TRUE(table_.Read("k", 100, 20).found);
  EXPECT_FALSE(table_.Read("k", 99, 20).found);
}

TEST_F(MvccTableTest, SnapshotIsolationAcrossVersions) {
  ASSERT_TRUE(table_.Insert("k", "v1", 1).ok());
  table_.CommitTxn(1, 100);
  ASSERT_TRUE(table_.Update("k", "v2", 2, /*snapshot=*/150).ok());
  table_.CommitTxn(2, 200);
  ASSERT_TRUE(table_.Update("k", "v3", 3, /*snapshot=*/250).ok());
  table_.CommitTxn(3, 300);

  EXPECT_FALSE(table_.Read("k", 50).found);
  EXPECT_EQ(table_.Read("k", 100).value, "v1");
  EXPECT_EQ(table_.Read("k", 199).value, "v1");
  EXPECT_EQ(table_.Read("k", 200).value, "v2");
  EXPECT_EQ(table_.Read("k", 299).value, "v2");
  EXPECT_EQ(table_.Read("k", 300).value, "v3");
  EXPECT_EQ(table_.Read("k", 999999).value, "v3");
}

TEST_F(MvccTableTest, DuplicateInsertRejected) {
  ASSERT_TRUE(table_.Insert("k", "v1", 1).ok());
  table_.CommitTxn(1, 100);
  Status s = table_.Insert("k", "v2", 2);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  // Own duplicate insert also rejected.
  ASSERT_TRUE(table_.Insert("j", "x", 3).ok());
  EXPECT_EQ(table_.Insert("j", "y", 3).code(), StatusCode::kAlreadyExists);
}

TEST_F(MvccTableTest, DeleteHidesRow) {
  ASSERT_TRUE(table_.Insert("k", "v1", 1).ok());
  table_.CommitTxn(1, 100);
  ASSERT_TRUE(table_.Delete("k", 2, 150).ok());
  table_.CommitTxn(2, 200);
  EXPECT_TRUE(table_.Read("k", 150).found);   // old snapshot still sees it
  EXPECT_FALSE(table_.Read("k", 200).found);  // deleted from 200 on
  // Re-insert after delete works.
  ASSERT_TRUE(table_.Insert("k", "v2", 3).ok());
  table_.CommitTxn(3, 300);
  EXPECT_EQ(table_.Read("k", 300).value, "v2");
}

TEST_F(MvccTableTest, WriteConflictFirstCommitterWins) {
  ASSERT_TRUE(table_.Insert("k", "v1", 1).ok());
  table_.CommitTxn(1, 100);
  // txn 2 commits an update; txn 3 (older snapshot) must then fail.
  ASSERT_TRUE(table_.Update("k", "v2", 2, 150).ok());
  table_.CommitTxn(2, 200);
  Status s = table_.Update("k", "v3", 3, /*snapshot=*/150);
  EXPECT_EQ(s.code(), StatusCode::kAborted);
}

TEST_F(MvccTableTest, ConcurrentProvisionalWriteConflicts) {
  ASSERT_TRUE(table_.Insert("k", "v1", 1).ok());
  table_.CommitTxn(1, 100);
  ASSERT_TRUE(table_.Update("k", "v2", 2, 150).ok());
  // txn 3 sees txn 2's provisional lock.
  EXPECT_EQ(table_.Update("k", "v3", 3, 150).code(), StatusCode::kAborted);
  EXPECT_EQ(table_.Delete("k", 3, 150).code(), StatusCode::kAborted);
}

TEST_F(MvccTableTest, AbortRollsBackEverything) {
  ASSERT_TRUE(table_.Insert("a", "v1", 1).ok());
  table_.CommitTxn(1, 100);
  ASSERT_TRUE(table_.Update("a", "v2", 2, 150).ok());
  ASSERT_TRUE(table_.Insert("b", "new", 2).ok());
  table_.AbortTxn(2);
  EXPECT_EQ(table_.Read("a", 500).value, "v1");
  EXPECT_FALSE(table_.Read("b", 500).found);
  // The lock is released: another txn can update.
  EXPECT_TRUE(table_.Update("a", "v3", 3, 150).ok());
}

TEST_F(MvccTableTest, UpdateOwnWriteOverwrites) {
  ASSERT_TRUE(table_.Insert("k", "v1", 1).ok());
  table_.CommitTxn(1, 100);
  ASSERT_TRUE(table_.Update("k", "v2", 2, 150).ok());
  ASSERT_TRUE(table_.Update("k", "v3", 2, 150).ok());
  table_.CommitTxn(2, 200);
  EXPECT_EQ(table_.Read("k", 200).value, "v3");
  // Exactly one new version was created (old + new).
  EXPECT_EQ(table_.Read("k", 199).value, "v1");
}

TEST_F(MvccTableTest, InsertThenDeleteSameTxnInvisible) {
  ASSERT_TRUE(table_.Insert("k", "v1", 1).ok());
  ASSERT_TRUE(table_.Delete("k", 1, 0).ok());
  // Writer no longer sees it.
  EXPECT_FALSE(table_.Read("k", 1000, 1).found);
  table_.CommitTxn(1, 100);
  EXPECT_FALSE(table_.Read("k", 1000).found);
}

TEST_F(MvccTableTest, ReadYourOwnDeletes) {
  ASSERT_TRUE(table_.Insert("k", "v1", 1).ok());
  table_.CommitTxn(1, 100);
  ASSERT_TRUE(table_.Delete("k", 2, 150).ok());
  EXPECT_FALSE(table_.Read("k", 150, 2).found);   // deleter doesn't see it
  EXPECT_TRUE(table_.Read("k", 150, 3).found);    // others still do
}

TEST_F(MvccTableTest, UpdateNonexistentFails) {
  EXPECT_EQ(table_.Update("nope", "v", 1, 100).code(), StatusCode::kNotFound);
  EXPECT_EQ(table_.Delete("nope", 1, 100).code(), StatusCode::kNotFound);
}

TEST_F(MvccTableTest, ScanReturnsVisibleRange) {
  for (int i = 0; i < 10; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(table_.Insert(key, "v" + std::to_string(i), 1).ok());
  }
  table_.CommitTxn(1, 100);
  ASSERT_TRUE(table_.Delete("k3", 2, 150).ok());
  table_.CommitTxn(2, 200);

  auto rows = table_.Scan("k2", "k6", /*snapshot=*/300, kInvalidTxnId, 100,
                          nullptr);
  ASSERT_EQ(rows.size(), 3u);  // k2, k4, k5 (k3 deleted)
  EXPECT_EQ(rows[0].key, "k2");
  EXPECT_EQ(rows[1].key, "k4");
  EXPECT_EQ(rows[2].key, "k5");

  // At an old snapshot, k3 is still there.
  rows = table_.Scan("k2", "k6", 150, kInvalidTxnId, 100, nullptr);
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(MvccTableTest, ScanCollectsProvisionalTxns) {
  ASSERT_TRUE(table_.Insert("a", "v", 1).ok());
  table_.CommitTxn(1, 100);
  ASSERT_TRUE(table_.Insert("b", "v", 2).ok());  // provisional
  std::vector<TxnId> pending;
  auto rows = table_.Scan("", "", 300, kInvalidTxnId, 100, &pending);
  EXPECT_EQ(rows.size(), 1u);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0], 2u);
}

TEST_F(MvccTableTest, ScanRespectsLimit) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        table_.Insert("k" + std::to_string(1000 + i), "v", 1).ok());
  }
  table_.CommitTxn(1, 100);
  auto rows = table_.Scan("", "", 200, kInvalidTxnId, 7, nullptr);
  EXPECT_EQ(rows.size(), 7u);
}

TEST_F(MvccTableTest, ReplicaApplyPathMirrorsPrimary) {
  // Replay: insert, commit, update, commit, delete, commit.
  table_.ApplyInsert("k", "v1", 1);
  table_.CommitTxn(1, 100);
  table_.ApplyUpdate("k", "v2", 2);
  table_.CommitTxn(2, 200);
  table_.ApplyDelete("k", 3);
  table_.CommitTxn(3, 300);
  EXPECT_EQ(table_.Read("k", 150).value, "v1");
  EXPECT_EQ(table_.Read("k", 250).value, "v2");
  EXPECT_FALSE(table_.Read("k", 300).found);
}

TEST_F(MvccTableTest, ProvisionalReportedToReplicaReaders) {
  table_.ApplyInsert("k", "v1", 1);
  table_.CommitTxn(1, 100);
  table_.ApplyUpdate("k", "v2", 2);  // txn 2 unresolved
  ReadResult r = table_.Read("k", 150);
  EXPECT_TRUE(r.found);  // committed v1 visible
  EXPECT_EQ(r.value, "v1");
  EXPECT_EQ(r.provisional_txn, 2u);  // but a pending writer is flagged
}

TEST_F(MvccTableTest, VacuumReclaimsDeadVersions) {
  ASSERT_TRUE(table_.Insert("k", "v1", 1).ok());
  table_.CommitTxn(1, 100);
  for (int i = 0; i < 5; ++i) {
    TxnId txn = 10 + i;
    ASSERT_TRUE(table_.Update("k", "v" + std::to_string(i), txn, 1000).ok());
    table_.CommitTxn(txn, 200 + i * 100);
  }
  const size_t reclaimed = table_.Vacuum(/*horizon=*/500);
  EXPECT_GE(reclaimed, 3u);
  // Latest version still readable.
  EXPECT_TRUE(table_.Read("k", 10000).found);
}

}  // namespace
}  // namespace globaldb
