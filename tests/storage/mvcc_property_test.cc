// Property test: MvccTable versus a reference model. Random committed
// transactions are applied sequentially; at every commit point the table's
// snapshot reads must match a trivially correct map-of-snapshots model,
// for both the primary write path and the replica replay path.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/storage/mvcc_table.h"

namespace globaldb {
namespace {

struct RefModel {
  // snapshot -> (key -> value) at that timestamp; built incrementally.
  std::map<Timestamp, std::map<std::string, std::string>> states;
  std::map<std::string, std::string> current;

  void Commit(Timestamp ts) { states[ts] = current; }

  std::optional<std::string> Read(const std::string& key,
                                  Timestamp snapshot) const {
    // Latest state with commit ts <= snapshot.
    auto it = states.upper_bound(snapshot);
    if (it == states.begin()) return std::nullopt;
    --it;
    auto found = it->second.find(key);
    if (found == it->second.end()) return std::nullopt;
    return found->second;
  }
};

enum class Path { kPrimary, kReplay };

class MvccPropertyTest : public ::testing::TestWithParam<Path> {};

TEST_P(MvccPropertyTest, MatchesReferenceModelUnderRandomHistories) {
  const Path path = GetParam();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7919);
    MvccTable table(1);
    RefModel model;
    Timestamp next_ts = 10;
    TxnId next_txn = 100;
    std::vector<Timestamp> commit_points;

    for (int txn_index = 0; txn_index < 60; ++txn_index) {
      const TxnId txn = next_txn++;
      const int ops = 1 + static_cast<int>(rng.Uniform(5));
      // Track this txn's effects on the model; applied only if committed.
      std::map<std::string, std::optional<std::string>> txn_writes;

      for (int op = 0; op < ops; ++op) {
        const std::string key = "k" + std::to_string(rng.Uniform(12));
        const std::string value =
            "v" + std::to_string(txn) + "_" + std::to_string(op);
        const bool exists_for_txn =
            txn_writes.count(key) ? txn_writes[key].has_value()
                                  : model.current.count(key) > 0;
        if (!exists_for_txn) {
          if (path == Path::kPrimary) {
            ASSERT_TRUE(table.Insert(key, value, txn).ok());
          } else {
            table.ApplyInsert(key, value, txn);
          }
          txn_writes[key] = value;
        } else if (rng.Bernoulli(0.7)) {
          if (path == Path::kPrimary) {
            ASSERT_TRUE(table.Update(key, value, txn, next_ts).ok());
          } else {
            table.ApplyUpdate(key, value, txn);
          }
          txn_writes[key] = value;
        } else {
          if (path == Path::kPrimary) {
            ASSERT_TRUE(table.Delete(key, txn, next_ts).ok());
          } else {
            table.ApplyDelete(key, txn);
          }
          txn_writes[key] = std::nullopt;
        }
      }

      if (rng.Bernoulli(0.2)) {
        table.AbortTxn(txn);  // model unchanged
      } else {
        const Timestamp ts = next_ts++;
        table.CommitTxn(txn, ts);
        for (auto& [key, value] : txn_writes) {
          if (value.has_value()) {
            model.current[key] = *value;
          } else {
            model.current.erase(key);
          }
        }
        model.Commit(ts);
        commit_points.push_back(ts);
      }
    }

    // Verify every key at every commit point and between points.
    for (Timestamp snapshot : commit_points) {
      for (int k = 0; k < 12; ++k) {
        const std::string key = "k" + std::to_string(k);
        for (Timestamp probe : {snapshot, snapshot - 1}) {
          auto expected = model.Read(key, probe);
          ReadResult actual = table.Read(key, probe);
          ASSERT_EQ(actual.found, expected.has_value())
              << "seed=" << seed << " key=" << key << " probe=" << probe;
          if (expected.has_value()) {
            EXPECT_EQ(actual.value, *expected);
          }
        }
      }
    }

    // Scans at the final snapshot match the model's final state.
    const Timestamp last = commit_points.empty() ? 1 : commit_points.back();
    auto rows = table.Scan("", "", last, kInvalidTxnId, 1000, nullptr);
    std::map<std::string, std::string> scanned;
    for (auto& row : rows) scanned[row.key] = row.value;
    auto expected_state = model.states.empty()
                              ? std::map<std::string, std::string>{}
                              : model.states.rbegin()->second;
    EXPECT_EQ(scanned, expected_state) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, MvccPropertyTest,
                         ::testing::Values(Path::kPrimary, Path::kReplay),
                         [](const auto& info) {
                           return info.param == Path::kPrimary ? "Primary"
                                                               : "Replay";
                         });

}  // namespace
}  // namespace globaldb
