#include "src/storage/value.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace globaldb {
namespace {

TEST(ValueTest, CompareSameTypes) {
  EXPECT_LT(CompareValues(int64_t{1}, int64_t{2}), 0);
  EXPECT_EQ(CompareValues(int64_t{5}, int64_t{5}), 0);
  EXPECT_GT(CompareValues(3.5, 2.5), 0);
  EXPECT_LT(CompareValues(std::string("abc"), std::string("abd")), 0);
}

TEST(ValueTest, CompareCrossNumeric) {
  EXPECT_EQ(CompareValues(int64_t{2}, 2.0), 0);
  EXPECT_LT(CompareValues(int64_t{2}, 2.5), 0);
  EXPECT_GT(CompareValues(3.5, int64_t{3}), 0);
}

TEST(ValueTest, NullsSortFirst) {
  EXPECT_LT(CompareValues(Value{}, int64_t{-100}), 0);
  EXPECT_EQ(CompareValues(Value{}, Value{}), 0);
  EXPECT_TRUE(ValueIsNull(Value{}));
  EXPECT_FALSE(ValueIsNull(Value{int64_t{0}}));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(ValueToString(Value{}), "NULL");
  EXPECT_EQ(ValueToString(Value{int64_t{42}}), "42");
  EXPECT_EQ(ValueToString(Value{std::string("hi")}), "hi");
}

TEST(RowCodecTest, RoundTrip) {
  Row row = {int64_t{-5}, 3.25, std::string("hello"), Value{},
             int64_t{1} << 50};
  std::string buf;
  EncodeRow(row, &buf);
  Row decoded;
  ASSERT_TRUE(DecodeRow(Slice(buf), &decoded).ok());
  ASSERT_EQ(decoded.size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(CompareValues(decoded[i], row[i]), 0) << i;
  }
}

TEST(RowCodecTest, EmptyRow) {
  std::string buf;
  EncodeRow({}, &buf);
  Row decoded;
  ASSERT_TRUE(DecodeRow(Slice(buf), &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(RowCodecTest, RejectsTruncation) {
  Row row = {int64_t{1}, std::string("abcdef")};
  std::string buf;
  EncodeRow(row, &buf);
  Row decoded;
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    EXPECT_FALSE(DecodeRow(Slice(buf.data(), cut), &decoded).ok());
  }
}

// --- Order-preserving key encoding property tests -------------------------

std::string KeyOf(const Value& v) {
  std::string k;
  EncodeKeyPart(v, &k);
  return k;
}

TEST(KeyEncodingTest, IntOrderPreserved) {
  const int64_t values[] = {INT64_MIN, -1000000, -1, 0, 1, 42,
                            1000000,   INT64_MAX};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(KeyOf(values[i]), KeyOf(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(KeyEncodingTest, DoubleOrderPreserved) {
  const double values[] = {-1e300, -2.5, -0.0001, 0.0, 0.0001, 1.0, 2.5, 1e300};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(KeyOf(values[i]), KeyOf(values[i + 1]));
  }
}

TEST(KeyEncodingTest, StringOrderPreservedWithEmbeddedZeros) {
  std::vector<std::string> values = {
      "", std::string("\x00", 1), std::string("\x00\x01", 2), "a",
      std::string("a\x00", 2), std::string("a\x00t", 3), "ab", "b"};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(KeyOf(values[i]), KeyOf(values[i + 1])) << i;
  }
}

TEST(KeyEncodingTest, PrefixStringSortsBeforeExtension) {
  // "abc" < "abcd" must hold after encoding (terminator correctness).
  EXPECT_LT(KeyOf(std::string("abc")), KeyOf(std::string("abcd")));
}

TEST(KeyEncodingTest, CompositeKeysConcatenate) {
  Row r1 = {int64_t{1}, std::string("b")};
  Row r2 = {int64_t{1}, std::string("c")};
  Row r3 = {int64_t{2}, std::string("a")};
  std::vector<int> cols = {0, 1};
  EXPECT_LT(EncodeKey(r1, cols), EncodeKey(r2, cols));
  EXPECT_LT(EncodeKey(r2, cols), EncodeKey(r3, cols));
}

TEST(KeyEncodingTest, DecodeRoundTrip) {
  const Value values[] = {Value{int64_t{-42}}, Value{3.75},
                          Value{std::string("ab\x00z", 4)}, Value{}};
  for (const Value& v : values) {
    std::string buf = KeyOf(v);
    Slice in(buf);
    Value out;
    ASSERT_TRUE(DecodeKeyPart(&in, &out).ok());
    EXPECT_EQ(CompareValues(out, v), 0);
    EXPECT_TRUE(in.empty());
  }
}

TEST(KeyEncodingTest, RandomizedIntOrderProperty) {
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    int64_t a = static_cast<int64_t>(rng.Next());
    int64_t b = static_cast<int64_t>(rng.Next());
    const std::string ka = KeyOf(a), kb = KeyOf(b);
    if (a < b) {
      EXPECT_LT(ka, kb) << a << " " << b;
    } else if (a > b) {
      EXPECT_GT(ka, kb) << a << " " << b;
    } else {
      EXPECT_EQ(ka, kb);
    }
  }
}

TEST(KeyEncodingTest, RandomizedStringOrderProperty) {
  Rng rng(43);
  for (int i = 0; i < 2000; ++i) {
    std::string a = rng.AlphaString(0, 8);
    std::string b = rng.AlphaString(0, 8);
    if (rng.Bernoulli(0.2)) a.push_back('\x00');
    if (rng.Bernoulli(0.2)) b.insert(0, 1, '\x00');
    const std::string ka = KeyOf(a), kb = KeyOf(b);
    if (a < b) {
      EXPECT_LT(ka, kb);
    } else if (a > b) {
      EXPECT_GT(ka, kb);
    } else {
      EXPECT_EQ(ka, kb);
    }
  }
}

}  // namespace
}  // namespace globaldb
