#include "src/storage/shard_store.h"

#include <gtest/gtest.h>

namespace globaldb {
namespace {

TEST(ShardStoreTest, GetOrCreateIsIdempotent) {
  ShardStore store(3);
  MvccTable* a = store.GetOrCreateTable(7);
  MvccTable* b = store.GetOrCreateTable(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->id(), 7u);
  EXPECT_EQ(store.GetTable(8), nullptr);
  EXPECT_EQ(store.NumTables(), 1u);
  EXPECT_EQ(store.shard(), 3u);
}

TEST(ShardStoreTest, CommitSpansTablesTouchedByTxn) {
  ShardStore store(0);
  store.GetOrCreateTable(1)->ApplyInsert("a", "v1", 9);
  store.GetOrCreateTable(2)->ApplyInsert("b", "v2", 9);
  store.GetOrCreateTable(3)->ApplyInsert("c", "v3", 8);  // different txn
  store.CommitTxn(9, 100);
  EXPECT_TRUE(store.GetTable(1)->Read("a", 100).found);
  EXPECT_TRUE(store.GetTable(2)->Read("b", 100).found);
  EXPECT_FALSE(store.GetTable(3)->Read("c", 100).found);  // still provisional
  store.AbortTxn(8);
  EXPECT_FALSE(store.GetTable(3)->Read("c", 100).found);
  ReadResult r = store.GetTable(3)->Read("c", 100);
  EXPECT_EQ(r.provisional_txn, kInvalidTxnId);  // fully rolled back
}

TEST(ShardStoreTest, DropTableRemovesData) {
  ShardStore store(0);
  store.GetOrCreateTable(1)->ApplyInsert("a", "v", 1);
  store.CommitTxn(1, 10);
  store.DropTable(1);
  EXPECT_EQ(store.GetTable(1), nullptr);
  EXPECT_EQ(store.NumTables(), 0u);
}

TEST(ShardStoreTest, VacuumAggregatesAcrossTables) {
  ShardStore store(0);
  for (TableId t = 1; t <= 3; ++t) {
    MvccTable* table = store.GetOrCreateTable(t);
    table->ApplyInsert("k", "v1", 1);
    table->CommitTxn(1, 10);
    table->ApplyUpdate("k", "v2", 2);
    table->CommitTxn(2, 20);
    table->ApplyUpdate("k", "v3", 3);
    table->CommitTxn(3, 30);
  }
  // Horizon 25: the v1 versions (ended at 20) are reclaimable everywhere.
  const size_t reclaimed = store.Vacuum(25);
  EXPECT_GE(reclaimed, 3u);
  for (TableId t = 1; t <= 3; ++t) {
    EXPECT_EQ(store.GetTable(t)->Read("k", 100).value, "v3");
    EXPECT_EQ(store.GetTable(t)->Read("k", 25).value, "v2");
  }
}

}  // namespace
}  // namespace globaldb
