#include "src/storage/catalog.h"

#include <gtest/gtest.h>

#include "src/storage/schema.h"

namespace globaldb {
namespace {

TableSchema MakeSchema(const std::string& name) {
  TableSchema s;
  s.name = name;
  s.columns = {{"id", ColumnType::kInt64},
               {"region", ColumnType::kString},
               {"balance", ColumnType::kDouble}};
  s.key_columns = {0};
  s.distribution_column = 0;
  return s;
}

TEST(CatalogTest, CreateAssignsIds) {
  Catalog catalog;
  auto id1 = catalog.CreateTable(MakeSchema("t1"));
  auto id2 = catalog.CreateTable(MakeSchema("t2"));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id1, *id2);
  EXPECT_EQ(catalog.NumTables(), 2u);
  EXPECT_EQ(catalog.FindTable("t1")->id, *id1);
  EXPECT_EQ(catalog.FindTableById(*id2)->name, "t2");
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(MakeSchema("t")).ok());
  EXPECT_EQ(catalog.CreateTable(MakeSchema("t")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, InvalidSchemasRejected) {
  Catalog catalog;
  TableSchema s = MakeSchema("bad");
  s.key_columns = {};
  EXPECT_FALSE(catalog.CreateTable(s).ok());
  s = MakeSchema("bad");
  s.key_columns = {7};
  EXPECT_FALSE(catalog.CreateTable(s).ok());
  s = MakeSchema("bad");
  s.columns.clear();
  EXPECT_FALSE(catalog.CreateTable(s).ok());
  s = MakeSchema("");
  EXPECT_FALSE(catalog.CreateTable(s).ok());
}

TEST(CatalogTest, DropTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(MakeSchema("t")).ok());
  ASSERT_TRUE(catalog.DropTable("t").ok());
  EXPECT_EQ(catalog.FindTable("t"), nullptr);
  EXPECT_EQ(catalog.DropTable("t").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, SchemaEncodeDecodeRoundTrip) {
  TableSchema s = MakeSchema("orders");
  s.id = 42;
  s.key_columns = {0, 1};
  s.distribution_column = 1;
  s.distribution = DistributionKind::kReplicated;
  std::string buf;
  s.EncodeTo(&buf);
  auto decoded = TableSchema::Decode(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, 42u);
  EXPECT_EQ(decoded->name, "orders");
  EXPECT_EQ(decoded->columns.size(), 3u);
  EXPECT_EQ(decoded->columns[1].name, "region");
  EXPECT_EQ(decoded->columns[1].type, ColumnType::kString);
  EXPECT_EQ(decoded->key_columns, (std::vector<int>{0, 1}));
  EXPECT_EQ(decoded->distribution_column, 1);
  EXPECT_EQ(decoded->distribution, DistributionKind::kReplicated);
}

TEST(CatalogTest, DdlPayloadApply) {
  Catalog primary;
  TableSchema s = MakeSchema("t");
  auto id = primary.CreateTable(s);
  ASSERT_TRUE(id.ok());
  const std::string create_payload =
      Catalog::MakeCreatePayload(*primary.FindTable("t"));

  // Replica catalog applies the payload.
  Catalog replica;
  ASSERT_TRUE(replica.ApplyDdl(create_payload, /*ts=*/500).ok());
  ASSERT_NE(replica.FindTable("t"), nullptr);
  EXPECT_EQ(replica.FindTable("t")->id, *id);
  EXPECT_EQ(replica.LastDdlTimestamp(*id), 500u);
  EXPECT_EQ(replica.MaxDdlTimestamp(), 500u);

  // Replay is idempotent.
  ASSERT_TRUE(replica.ApplyDdl(create_payload, 500).ok());
  EXPECT_EQ(replica.NumTables(), 1u);

  // Drop payload removes it.
  ASSERT_TRUE(replica.ApplyDdl(Catalog::MakeDropPayload("t"), 600).ok());
  EXPECT_EQ(replica.FindTable("t"), nullptr);
  EXPECT_EQ(replica.MaxDdlTimestamp(), 600u);
}

TEST(CatalogTest, ApplyDdlRejectsGarbage) {
  Catalog catalog;
  EXPECT_FALSE(catalog.ApplyDdl("", 1).ok());
  EXPECT_FALSE(catalog.ApplyDdl("Xjunk", 1).ok());
  EXPECT_FALSE(catalog.ApplyDdl("C\x01\x02", 1).ok());
}

TEST(CatalogTest, DdlTimestampsMonotonic) {
  Catalog catalog;
  auto id = catalog.CreateTable(MakeSchema("t"));
  ASSERT_TRUE(id.ok());
  catalog.RecordDdlTimestamp(*id, 100);
  catalog.RecordDdlTimestamp(*id, 50);  // stale, ignored
  EXPECT_EQ(catalog.LastDdlTimestamp(*id), 100u);
}

TEST(SchemaTest, ValidateRow) {
  TableSchema s = MakeSchema("t");
  EXPECT_TRUE(
      s.ValidateRow({int64_t{1}, std::string("x"), 2.5}).ok());
  // Int accepted for double column.
  EXPECT_TRUE(
      s.ValidateRow({int64_t{1}, std::string("x"), int64_t{2}}).ok());
  // Wrong arity.
  EXPECT_FALSE(s.ValidateRow({int64_t{1}}).ok());
  // Type mismatch.
  EXPECT_FALSE(
      s.ValidateRow({std::string("x"), std::string("x"), 2.5}).ok());
  // Null in key column.
  EXPECT_FALSE(s.ValidateRow({Value{}, std::string("x"), 2.5}).ok());
  // Null elsewhere is fine.
  EXPECT_TRUE(s.ValidateRow({int64_t{1}, Value{}, Value{}}).ok());
}

TEST(SchemaTest, RoutingStableAndBalanced) {
  TableSchema s = MakeSchema("t");
  const uint32_t kShards = 6;
  int counts[kShards] = {0};
  for (int i = 0; i < 6000; ++i) {
    Row row = {int64_t{i}, std::string("r"), 0.0};
    ShardId shard = RouteRowToShard(s, row, kShards);
    ASSERT_LT(shard, kShards);
    EXPECT_EQ(shard, RouteRowToShard(s, row, kShards));  // deterministic
    counts[shard]++;
  }
  for (int c : counts) EXPECT_GT(c, 600);

  // Replicated tables route to shard 0.
  s.distribution = DistributionKind::kReplicated;
  EXPECT_EQ(RouteRowToShard(s, {int64_t{123}, std::string("r"), 0.0}, kShards),
            0u);
}

}  // namespace
}  // namespace globaldb
