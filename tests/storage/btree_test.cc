#include "src/storage/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/common/rng.h"

namespace globaldb {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

TEST(BTreeTest, EmptyTree) {
  BTree<int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Find("x"), nullptr);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, PutAndFind) {
  BTree<int> tree;
  tree.Put("b", 2);
  tree.Put("a", 1);
  tree.Put("c", 3);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(*tree.Find("a"), 1);
  EXPECT_EQ(*tree.Find("b"), 2);
  EXPECT_EQ(*tree.Find("c"), 3);
  EXPECT_EQ(tree.Find("d"), nullptr);
}

TEST(BTreeTest, PutOverwrites) {
  BTree<int> tree;
  tree.Put("k", 1);
  tree.Put("k", 2);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Find("k"), 2);
}

TEST(BTreeTest, OperatorBracketDefaultConstructs) {
  BTree<int> tree;
  EXPECT_EQ(tree["new"], 0);
  tree["new"] = 9;
  EXPECT_EQ(*tree.Find("new"), 9);
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTree<int> tree;
  for (int i = 0; i < 10000; ++i) tree.Put(Key(i), i);
  EXPECT_EQ(tree.size(), 10000u);
  EXPECT_GE(tree.Height(), 2);
  EXPECT_TRUE(tree.CheckInvariants());
  for (int i = 0; i < 10000; ++i) {
    ASSERT_NE(tree.Find(Key(i)), nullptr) << i;
    EXPECT_EQ(*tree.Find(Key(i)), i);
  }
}

TEST(BTreeTest, ReverseInsertionOrder) {
  BTree<int> tree;
  for (int i = 9999; i >= 0; --i) tree.Put(Key(i), i);
  EXPECT_TRUE(tree.CheckInvariants());
  int expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), Key(expected));
    ++expected;
  }
  EXPECT_EQ(expected, 10000);
}

TEST(BTreeTest, LowerBoundSemantics) {
  BTree<int> tree;
  for (int i = 0; i < 100; i += 2) tree.Put(Key(i), i);  // even keys
  auto it = tree.LowerBound(Key(10));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(10));
  it = tree.LowerBound(Key(11));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(12));
  it = tree.LowerBound(Key(99));
  EXPECT_FALSE(it.Valid());
  it = tree.LowerBound("");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(0));
}

TEST(BTreeTest, RangeScanAcrossLeaves) {
  BTree<int> tree;
  for (int i = 0; i < 1000; ++i) tree.Put(Key(i), i);
  int count = 0;
  for (auto it = tree.LowerBound(Key(200)); it.Valid() && it.key() < Key(700);
       it.Next()) {
    EXPECT_EQ(it.value(), 200 + count);
    ++count;
  }
  EXPECT_EQ(count, 500);
}

TEST(BTreeTest, EraseRemovesAndIterationSkips) {
  BTree<int> tree;
  for (int i = 0; i < 500; ++i) tree.Put(Key(i), i);
  for (int i = 0; i < 500; i += 2) EXPECT_TRUE(tree.Erase(Key(i)));
  EXPECT_FALSE(tree.Erase(Key(0)));  // already gone
  EXPECT_EQ(tree.size(), 250u);
  EXPECT_TRUE(tree.CheckInvariants());
  int count = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(std::stoi(it.key().substr(1)) % 2, 1);
    ++count;
  }
  EXPECT_EQ(count, 250);
}

TEST(BTreeTest, EraseEntireLeafThenIterate) {
  BTree<int> tree;
  for (int i = 0; i < 300; ++i) tree.Put(Key(i), i);
  // Erase a contiguous block that likely empties whole leaves.
  for (int i = 50; i < 200; ++i) tree.Erase(Key(i));
  EXPECT_TRUE(tree.CheckInvariants());
  auto it = tree.LowerBound(Key(50));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(200));
}

TEST(BTreeTest, MatchesStdMapUnderRandomOps) {
  BTree<int> tree;
  std::map<std::string, int> reference;
  Rng rng(99);
  for (int op = 0; op < 20000; ++op) {
    const std::string key = Key(static_cast<int>(rng.Uniform(2000)));
    switch (rng.Uniform(3)) {
      case 0: {
        int v = static_cast<int>(rng.Uniform(1000));
        tree.Put(key, v);
        reference[key] = v;
        break;
      }
      case 1: {
        EXPECT_EQ(tree.Erase(key), reference.erase(key) > 0);
        break;
      }
      case 2: {
        int* found = tree.Find(key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  EXPECT_TRUE(tree.CheckInvariants());
  // Full ordered iteration must match.
  auto tree_it = tree.Begin();
  for (const auto& [k, v] : reference) {
    ASSERT_TRUE(tree_it.Valid());
    EXPECT_EQ(tree_it.key(), k);
    EXPECT_EQ(tree_it.value(), v);
    tree_it.Next();
  }
  EXPECT_FALSE(tree_it.Valid());
}

TEST(BTreeTest, BinaryKeysWithZeros) {
  BTree<int> tree;
  std::string k1("\x00", 1), k2("\x00\x00", 2), k3("\x01", 1);
  tree.Put(k2, 2);
  tree.Put(k3, 3);
  tree.Put(k1, 1);
  auto it = tree.Begin();
  EXPECT_EQ(it.key(), k1);
  it.Next();
  EXPECT_EQ(it.key(), k2);
  it.Next();
  EXPECT_EQ(it.key(), k3);
}

}  // namespace
}  // namespace globaldb
