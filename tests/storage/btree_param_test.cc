// Parameterized B+-tree sweep over insertion patterns and sizes: ordered
// iteration, lower-bound semantics, and structural invariants must hold for
// sequential, reverse, random, clustered, and interleaved-erase workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/storage/btree.h"

namespace globaldb {
namespace {

enum class Pattern { kSequential, kReverse, kRandom, kClustered, kErasing };

const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kSequential:
      return "Sequential";
    case Pattern::kReverse:
      return "Reverse";
    case Pattern::kRandom:
      return "Random";
    case Pattern::kClustered:
      return "Clustered";
    case Pattern::kErasing:
      return "Erasing";
  }
  return "?";
}

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "key%07d", i);
  return buf;
}

class BTreeSweepTest
    : public ::testing::TestWithParam<std::tuple<Pattern, int>> {};

TEST_P(BTreeSweepTest, OrderedIterationAndLookups) {
  auto [pattern, n] = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 131 + static_cast<int>(pattern));
  BTree<int> tree;
  std::set<int> expected;

  auto insert = [&](int i) {
    tree.Put(Key(i), i);
    expected.insert(i);
  };

  switch (pattern) {
    case Pattern::kSequential:
      for (int i = 0; i < n; ++i) insert(i);
      break;
    case Pattern::kReverse:
      for (int i = n - 1; i >= 0; --i) insert(i);
      break;
    case Pattern::kRandom:
      for (int i = 0; i < n; ++i) insert(static_cast<int>(rng.Uniform(n)));
      break;
    case Pattern::kClustered:
      // Bursts of adjacent keys starting at random offsets.
      for (int i = 0; i < n; i += 16) {
        const int base = static_cast<int>(rng.Uniform(n));
        for (int j = 0; j < 16; ++j) insert((base + j) % n);
      }
      break;
    case Pattern::kErasing:
      for (int i = 0; i < n; ++i) insert(i);
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.5)) {
          tree.Erase(Key(i));
          expected.erase(i);
        }
      }
      break;
  }

  ASSERT_EQ(tree.size(), expected.size());
  ASSERT_TRUE(tree.CheckInvariants());

  // Full ordered iteration matches the reference set.
  auto it = tree.Begin();
  for (int v : expected) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), Key(v));
    EXPECT_EQ(it.value(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());

  // Point lookups: present and absent keys.
  for (int probe = 0; probe < std::min(n, 200); ++probe) {
    const int i = static_cast<int>(rng.Uniform(n));
    int* found = tree.Find(Key(i));
    if (expected.count(i)) {
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(*found, i);
    } else {
      EXPECT_EQ(found, nullptr);
    }
  }

  // LowerBound agrees with the reference set's lower_bound.
  for (int probe = 0; probe < 50; ++probe) {
    const int i = static_cast<int>(rng.Uniform(n + 2));
    auto ref = expected.lower_bound(i);
    auto got = tree.LowerBound(Key(i));
    if (ref == expected.end()) {
      EXPECT_FALSE(got.Valid());
    } else {
      ASSERT_TRUE(got.Valid());
      EXPECT_EQ(got.key(), Key(*ref));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreeSweepTest,
    ::testing::Combine(::testing::Values(Pattern::kSequential,
                                         Pattern::kReverse, Pattern::kRandom,
                                         Pattern::kClustered,
                                         Pattern::kErasing),
                       ::testing::Values(1, 63, 64, 65, 1000, 20000)),
    [](const auto& info) {
      return std::string(PatternName(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace globaldb
