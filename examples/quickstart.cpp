// Quickstart: stand up a three-city GlobalDB cluster, create a table,
// write a few rows, and read them back — from primaries inside a
// read-write transaction, and from asynchronous replicas through the
// Read-On-Replica (ROR) path with guaranteed consistency.
//
//   ./example_quickstart

#include <cstdio>

#include "src/cluster/cluster.h"

using namespace globaldb;

namespace {

sim::Task<void> Run(Cluster* cluster, bool* done) {
  CoordinatorNode& cn = cluster->cn(0);

  // 1. Create a table: id (key, distribution column), name, score.
  TableSchema schema;
  schema.name = "players";
  schema.columns = {{"id", ColumnType::kInt64},
                    {"name", ColumnType::kString},
                    {"score", ColumnType::kInt64}};
  schema.key_columns = {0};
  schema.distribution_column = 0;
  Status s = co_await cn.CreateTable(schema);
  printf("create table players: %s\n", s.ToString().c_str());

  // 2. Insert rows in one transaction (rows hash to different shards, so
  // this commits with two-phase commit under the hood).
  auto txn = co_await cn.Begin();
  for (int64_t id = 1; id <= 5; ++id) {
    Row row = {id, "player_" + std::to_string(id), id * 100};
    s = co_await cn.Insert(&*txn, "players", row);
    printf("insert id=%lld: %s\n", static_cast<long long>(id),
           s.ToString().c_str());
  }
  s = co_await cn.Commit(&*txn);
  printf("commit: %s (write shards: %zu)\n", s.ToString().c_str(),
         txn->write_shards.size());

  // 3. Read back from the primaries.
  auto reader = co_await cn.Begin();
  Row key = {int64_t{3}};
  auto row = co_await cn.Get(&*reader, "players", key);
  if (row.ok() && row->has_value()) {
    printf("primary read id=3 -> name=%s score=%s\n",
           ValueToString((**row)[1]).c_str(),
           ValueToString((**row)[2]).c_str());
  }

  // 4. Wait for async replication + the replica consistency point, then
  // read from a local replica (strongly consistent at the RCP snapshot).
  co_await cluster->simulator()->Sleep(500 * kMillisecond);
  auto ror = co_await cn.Begin(/*read_only=*/true, /*single_shard=*/true);
  printf("read-only txn: use_ror=%d snapshot(rcp)=%llu\n", ror->use_ror,
         static_cast<unsigned long long>(ror->snapshot));
  row = co_await cn.Get(&*ror, "players", key);
  if (row.ok() && row->has_value()) {
    printf("replica read id=3 -> name=%s score=%s\n",
           ValueToString((**row)[1]).c_str(),
           ValueToString((**row)[2]).c_str());
  }
  // Note: a shard mastered in this CN's own region is read from the local
  // primary (cheapest node on the skyline); remote-mastered shards read
  // from local replicas.
  printf("reads routed to replicas: %lld, to primaries: %lld\n",
         static_cast<long long>(cn.metrics().Get("cn.replica_reads")),
         static_cast<long long>(cn.metrics().Get("cn.primary_reads")));
  *done = true;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kInfo);
  sim::Simulator sim(2024);

  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.initial_mode = TimestampMode::kGclock;
  options.num_shards = 6;
  options.replicas_per_shard = 2;
  Cluster cluster(&sim, options);
  cluster.Start();

  bool done = false;
  sim.Spawn(Run(&cluster, &done));
  while (!done) sim.RunFor(10 * kMillisecond);
  printf("\nsimulated time elapsed: %.1f ms\n",
         static_cast<double>(sim.now()) / kMillisecond);
  return 0;
}
