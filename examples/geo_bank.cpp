// A geo-distributed bank: accounts are sharded across three cities; money
// moves with cross-shard (two-phase-commit) transfers while auditors run
// consistent read-only balance sweeps on local replicas. The sweep total
// must be constant at every consistency point — the demo prints the proof.
//
//   ./example_geo_bank

#include <cstdio>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"

using namespace globaldb;

namespace {

constexpr int kAccounts = 60;
constexpr int64_t kInitialBalance = 1000;

sim::Task<Status> Transfer(CoordinatorNode* cn, int64_t from, int64_t to,
                           int64_t amount) {
  auto txn = co_await cn->Begin();
  if (!txn.ok()) co_return txn.status();
  Row from_key = {from};
  Row to_key = {to};
  auto src = co_await cn->GetForUpdate(&*txn, "accounts", from_key);
  auto dst = co_await cn->GetForUpdate(&*txn, "accounts", to_key);
  if (!src.ok() || !dst.ok() || !src->has_value() || !dst->has_value()) {
    (void)co_await cn->Abort(&*txn);
    co_return Status::NotFound("account");
  }
  Row src_row = **src;
  Row dst_row = **dst;
  if (std::get<int64_t>(src_row[1]) < amount) {
    (void)co_await cn->Abort(&*txn);
    co_return Status::FailedPrecondition("insufficient funds");
  }
  std::get<int64_t>(src_row[1]) -= amount;
  std::get<int64_t>(dst_row[1]) += amount;
  Status s = co_await cn->Update(&*txn, "accounts", src_row);
  if (s.ok()) s = co_await cn->Update(&*txn, "accounts", dst_row);
  if (!s.ok()) {
    (void)co_await cn->Abort(&*txn);
    co_return s;
  }
  co_return co_await cn->Commit(&*txn);
}

sim::Task<void> TransferLoop(Cluster* cluster, int cn_index, uint64_t seed,
                             int* commits, const bool* stop) {
  Rng rng(seed);
  CoordinatorNode* cn = &cluster->cn(cn_index);
  while (!*stop) {
    const int64_t from = rng.UniformRange(1, kAccounts);
    int64_t to = rng.UniformRange(1, kAccounts);
    if (to == from) to = (to % kAccounts) + 1;
    Status s = co_await Transfer(cn, from, to, rng.UniformRange(1, 50));
    if (s.ok()) ++*commits;
    co_await cluster->simulator()->Sleep(2 * kMillisecond);
  }
}

/// Consistent audit on replicas: one ROR transaction scans every account at
/// the RCP snapshot; the total must equal kAccounts * kInitialBalance even
/// while transfers are in flight.
sim::Task<void> Audit(Cluster* cluster, int cn_index, int round) {
  CoordinatorNode* cn = &cluster->cn(cn_index);
  auto txn = co_await cn->Begin(/*read_only=*/true);
  if (!txn.ok()) co_return;
  auto rows = co_await cn->ScanRange(&*txn, "accounts", "", "", 100000);
  if (!rows.ok()) {
    printf("audit %d failed: %s\n", round, rows.status().ToString().c_str());
    co_return;
  }
  int64_t total = 0;
  for (const Row& row : *rows) total += std::get<int64_t>(row[1]);
  printf("audit %d @ cn%d: accounts=%zu total=%lld (%s, snapshot=%llu, "
         "ror=%d)\n",
         round, cn_index, rows->size(), static_cast<long long>(total),
         total == kAccounts * kInitialBalance ? "CONSISTENT" : "BROKEN!",
         static_cast<unsigned long long>(txn->snapshot), txn->use_ror);
}

sim::Task<void> Run(Cluster* cluster, bool* done) {
  CoordinatorNode& cn = cluster->cn(0);
  TableSchema schema;
  schema.name = "accounts";
  schema.columns = {{"id", ColumnType::kInt64},
                    {"balance", ColumnType::kInt64}};
  schema.key_columns = {0};
  schema.distribution_column = 0;
  Status s = co_await cn.CreateTable(schema);
  printf("create accounts: %s\n", s.ToString().c_str());

  auto setup = co_await cn.Begin();
  for (int64_t id = 1; id <= kAccounts; ++id) {
    Row row = {id, kInitialBalance};
    (void)co_await cn.Insert(&*setup, "accounts", row);
  }
  s = co_await cn.Commit(&*setup);
  printf("loaded %d accounts x %lld: %s\n", kAccounts,
         static_cast<long long>(kInitialBalance), s.ToString().c_str());

  // Transfers from all three cities; audits every 300 ms from rotating CNs.
  bool stop = false;
  int commits = 0;
  for (int c = 0; c < 9; ++c) {
    cluster->simulator()->Spawn(
        TransferLoop(cluster, c % 3, 100 + c, &commits, &stop));
  }
  for (int round = 1; round <= 8; ++round) {
    co_await cluster->simulator()->Sleep(300 * kMillisecond);
    co_await Audit(cluster, round % 3, round);
  }
  stop = true;
  co_await cluster->simulator()->Sleep(200 * kMillisecond);
  printf("transfers committed: %d\n", commits);
  *done = true;
}

}  // namespace

int main() {
  sim::Simulator sim(7777);
  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.initial_mode = TimestampMode::kGclock;
  Cluster cluster(&sim, options);
  cluster.Start();

  bool done = false;
  sim.Spawn(Run(&cluster, &done));
  while (!done) sim.RunFor(10 * kMillisecond);
  return 0;
}
