// Replica failure and dynamic rerouting: read-only traffic is served from
// local replicas until they crash; the skyline node selection detects the
// failures, reroutes queries (to other replicas or primaries), and folds
// the replicas back in when they recover.
//
//   ./example_replica_failover

#include <cstdio>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"

using namespace globaldb;

namespace {

sim::Task<void> ReadLoop(Cluster* cluster, int cn_index, uint64_t seed,
                         int* ok_reads, int* failed_reads, const bool* stop) {
  Rng rng(seed);
  CoordinatorNode* cn = &cluster->cn(cn_index);
  while (!*stop) {
    co_await cluster->simulator()->Sleep(2 * kMillisecond);
    auto txn = co_await cn->Begin(/*read_only=*/true, /*single_shard=*/true);
    if (!txn.ok()) {
      ++*failed_reads;
      continue;
    }
    Row key = {rng.UniformRange(1, 100)};
    auto row = co_await cn->Get(&*txn, "inventory", key);
    if (row.ok()) {
      ++*ok_reads;
    } else {
      ++*failed_reads;
    }
  }
}

void Snapshot(Cluster* cluster, const char* phase, int ok, int failed) {
  int64_t replica_reads = 0, primary_reads = 0, failovers = 0;
  for (size_t i = 0; i < cluster->num_cns(); ++i) {
    replica_reads += cluster->cn(i).metrics().Get("cn.replica_reads");
    primary_reads += cluster->cn(i).metrics().Get("cn.primary_reads");
    failovers += cluster->cn(i).metrics().Get("cn.replica_failovers");
  }
  printf("%-34s ok=%5d failed=%d replica_reads=%lld primary_reads=%lld "
         "reroutes=%lld\n",
         phase, ok, failed, static_cast<long long>(replica_reads),
         static_cast<long long>(primary_reads),
         static_cast<long long>(failovers));
}

sim::Task<void> Run(Cluster* cluster, bool* done) {
  CoordinatorNode& cn = cluster->cn(0);
  TableSchema schema;
  schema.name = "inventory";
  schema.columns = {{"sku", ColumnType::kInt64},
                    {"count", ColumnType::kInt64}};
  schema.key_columns = {0};
  schema.distribution_column = 0;
  (void)co_await cn.CreateTable(schema);
  auto setup = co_await cn.Begin();
  for (int64_t sku = 1; sku <= 100; ++sku) {
    Row row = {sku, sku * 7};
    (void)co_await cn.Insert(&*setup, "inventory", row);
  }
  (void)co_await cn.Commit(&*setup);
  co_await cluster->simulator()->Sleep(500 * kMillisecond);

  bool stop = false;
  int ok_reads = 0, failed_reads = 0;
  for (int c = 0; c < 6; ++c) {
    cluster->simulator()->Spawn(ReadLoop(cluster, c % 3, 10 + c, &ok_reads,
                                         &failed_reads, &stop));
  }

  co_await cluster->simulator()->Sleep(600 * kMillisecond);
  Snapshot(cluster, "phase 1: all replicas healthy", ok_reads, failed_reads);

  // Crash every replica hosted in region 1.
  int crashed = 0;
  for (ShardId s = 0; s < cluster->num_shards(); ++s) {
    for (uint32_t r = 0; r < cluster->options().replicas_per_shard; ++r) {
      if (cluster->ReplicaRegion(s, r) == 1) {
        cluster->network().SetNodeUp(cluster->ReplicaNodeId(s, r), false);
        ++crashed;
      }
    }
  }
  printf("  !! crashed %d replicas in region 1\n", crashed);
  co_await cluster->simulator()->Sleep(600 * kMillisecond);
  Snapshot(cluster, "phase 2: region-1 replicas down", ok_reads,
           failed_reads);

  // Recovery: nodes come back, catch up on redo, rejoin the skyline.
  for (ShardId s = 0; s < cluster->num_shards(); ++s) {
    for (uint32_t r = 0; r < cluster->options().replicas_per_shard; ++r) {
      if (cluster->ReplicaRegion(s, r) == 1) {
        cluster->network().SetNodeUp(cluster->ReplicaNodeId(s, r), true);
      }
    }
  }
  printf("  .. region-1 replicas restarted\n");
  co_await cluster->simulator()->Sleep(600 * kMillisecond);
  Snapshot(cluster, "phase 3: recovered", ok_reads, failed_reads);

  stop = true;
  co_await cluster->simulator()->Sleep(100 * kMillisecond);
  printf("\nno read ever failed: queries rerouted around the dead "
         "replicas.\n");
  *done = true;
}

}  // namespace

int main() {
  sim::Simulator sim(555);
  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.initial_mode = TimestampMode::kGclock;
  Cluster cluster(&sim, options);
  cluster.Start();

  bool done = false;
  sim.Spawn(Run(&cluster, &done));
  while (!done) sim.RunFor(10 * kMillisecond);
  return 0;
}
