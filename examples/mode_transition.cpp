// Live transaction-management mode transition: the cluster starts on the
// centralized GTM, migrates to decentralized GClock timestamps under load
// with zero downtime (Fig. 2), survives a clock-synchronization failure by
// falling back to GTM (Fig. 3), and returns to GClock after the clocks
// recover — while a writer keeps committing the whole time.
//
//   ./example_mode_transition

#include <cstdio>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"

using namespace globaldb;

namespace {

sim::Task<void> Writer(Cluster* cluster, int* commits, int* aborts,
                       const bool* stop) {
  Rng rng(3);
  CoordinatorNode* cn = &cluster->cn(1);
  int64_t v = 0;
  while (!*stop) {
    co_await cluster->simulator()->Sleep(3 * kMillisecond);
    auto txn = co_await cn->Begin();
    if (!txn.ok()) {
      ++*aborts;
      continue;
    }
    Row row = {rng.UniformRange(1, 50), ++v};
    Row key = {row[0]};
    auto existing = co_await cn->GetForUpdate(&*txn, "counters", key);
    Status s;
    if (existing.ok() && existing->has_value()) {
      s = co_await cn->Update(&*txn, "counters", row);
    } else {
      s = co_await cn->Insert(&*txn, "counters", row);
    }
    if (s.ok()) s = co_await cn->Commit(&*txn);
    if (s.ok()) {
      ++*commits;
    } else {
      ++*aborts;
      (void)co_await cn->Abort(&*txn);
    }
  }
}

void Report(Cluster* cluster, const char* phase, int commits, int aborts) {
  printf("%-44s mode=%-6s commits=%4d aborts=%2d\n", phase,
         TimestampModeName(cluster->gtm().mode()), commits, aborts);
}

sim::Task<void> Run(Cluster* cluster, bool* done) {
  CoordinatorNode& cn = cluster->cn(0);
  TableSchema schema;
  schema.name = "counters";
  schema.columns = {{"id", ColumnType::kInt64},
                    {"value", ColumnType::kInt64}};
  schema.key_columns = {0};
  schema.distribution_column = 0;
  (void)co_await cn.CreateTable(schema);

  bool stop = false;
  int commits = 0, aborts = 0;
  cluster->simulator()->Spawn(Writer(cluster, &commits, &aborts, &stop));

  co_await cluster->simulator()->Sleep(500 * kMillisecond);
  Report(cluster, "phase 1: centralized GTM", commits, aborts);

  // Zero-downtime migration to synchronized-clock timestamps (Fig. 2).
  auto up = co_await cluster->transition().SwitchToGclock();
  printf("  -> GTM->GClock transition, DUAL dwell = %.1f us\n",
         up.ok() ? static_cast<double>(*up) / kMicrosecond : -1.0);
  co_await cluster->simulator()->Sleep(500 * kMillisecond);
  Report(cluster, "phase 2: decentralized GClock", commits, aborts);

  // Clock failure: the error bound grows; fall back to GTM (Fig. 3 —
  // no transaction aborts in this direction).
  cluster->cn(1).clock().set_sync_healthy(false);
  co_await cluster->simulator()->Sleep(300 * kMillisecond);
  printf("  !! clock sync failure on CN1, error bound now %.1f us\n",
         static_cast<double>(cluster->cn(1).clock().ErrorBound()) /
             kMicrosecond);
  auto down = co_await cluster->transition().SwitchToGtm();
  printf("  -> GClock->GTM fallback, counter floored at %llu\n",
         down.ok() ? static_cast<unsigned long long>(*down) : 0ULL);
  co_await cluster->simulator()->Sleep(500 * kMillisecond);
  Report(cluster, "phase 3: GTM fallback (clock fault)", commits, aborts);

  // Clocks recover; resume decentralized operation.
  cluster->cn(1).clock().set_sync_healthy(true);
  co_await cluster->simulator()->Sleep(50 * kMillisecond);
  auto up2 = co_await cluster->transition().SwitchToGclock();
  (void)up2;
  co_await cluster->simulator()->Sleep(500 * kMillisecond);
  Report(cluster, "phase 4: back on GClock", commits, aborts);

  stop = true;
  co_await cluster->simulator()->Sleep(100 * kMillisecond);
  printf("\ntotal: %d commits, %d aborts — the cluster never stopped "
         "accepting transactions.\n", commits, aborts);
  *done = true;
}

}  // namespace

int main() {
  sim::Simulator sim(99);
  ClusterOptions options;
  options.topology = sim::Topology::ThreeCity();
  options.initial_mode = TimestampMode::kGtm;
  Cluster cluster(&sim, options);
  cluster.Start();

  bool done = false;
  sim.Spawn(Run(&cluster, &done));
  while (!done) sim.RunFor(10 * kMillisecond);
  return 0;
}
