// Ablation: zero-downtime mode transitions (Section III-A, Figs. 2-3).
// Runs a write workload on the Three-City cluster while the transition
// coordinator flips the cluster GTM -> GClock -> GTM, and prints per-bucket
// commit throughput so the (absence of) downtime is visible.

#include <vector>

#include "bench/bench_util.h"

using namespace globaldb;
using namespace globaldb::bench;

namespace {

struct Timeline {
  std::vector<int64_t> commits;   // per bucket
  std::vector<int64_t> aborts;    // per bucket
  SimDuration bucket = 200 * kMillisecond;
  SimTime start = 0;

  void Record(SimTime when, bool ok) {
    const size_t idx = static_cast<size_t>((when - start) / bucket);
    if (commits.size() <= idx) {
      commits.resize(idx + 1, 0);
      aborts.resize(idx + 1, 0);
    }
    (ok ? commits : aborts)[idx]++;
  }
};

sim::Task<void> Client(Cluster* cluster, TpccWorkload* tpcc, int cn_index,
                       uint64_t seed, Timeline* timeline, const bool* done) {
  Rng rng(seed);
  sim::Simulator* sim = cluster->simulator();
  CoordinatorNode* cn = &cluster->cn(cn_index);
  while (!*done) {
    TxnResult result = co_await tpcc->Payment(cn, &rng);
    timeline->Record(sim->now(), result.status.ok());
  }
}

sim::Task<void> Control(Cluster* cluster, std::vector<SimTime>* marks,
                        bool* done) {
  sim::Simulator* sim = cluster->simulator();
  co_await sim->Sleep(1 * kSecond);
  marks->push_back(sim->now());
  auto up = co_await cluster->transition().SwitchToGclock();
  GDB_CHECK(up.ok()) << up.status().ToString();
  marks->push_back(sim->now());
  co_await sim->Sleep(1 * kSecond);
  marks->push_back(sim->now());
  auto down = co_await cluster->transition().SwitchToGtm();
  GDB_CHECK(down.ok()) << down.status().ToString();
  marks->push_back(sim->now());
  co_await sim->Sleep(1 * kSecond);
  *done = true;
}

}  // namespace

int main() {
  sim::Simulator sim(41);
  ClusterOptions options =
      MakeClusterOptions(SystemKind::kGlobalDb, sim::Topology::ThreeCity());
  options.initial_mode = TimestampMode::kGtm;  // start centralized
  Cluster cluster(&sim, options);
  cluster.Start();

  TpccConfig config = MakeTpccConfig();
  config.num_warehouses = 120;
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();

  Timeline timeline;
  timeline.start = sim.now();
  bool done = false;
  std::vector<SimTime> marks;
  const int clients = 60;
  for (int c = 0; c < clients; ++c) {
    sim.Spawn(Client(&cluster, &tpcc, c % static_cast<int>(cluster.num_cns()),
                     1000 + c, &timeline, &done));
  }
  sim.Spawn(Control(&cluster, &marks, &done));
  sim.RunFor(10 * kSecond);

  PrintHeader("Ablation: live GTM -> GClock -> GTM transition "
              "(Payment transactions, Three-City)",
              "bucket  t_ms     commits  aborts  phase");
  auto phase_at = [&](SimTime t) -> const char* {
    if (marks.size() < 4) return "?";
    if (t < marks[0]) return "GTM";
    if (t < marks[1]) return "-> transitioning to GClock";
    if (t < marks[2]) return "GCLOCK";
    if (t < marks[3]) return "-> transitioning to GTM";
    return "GTM";
  };
  for (size_t i = 0; i < timeline.commits.size(); ++i) {
    const SimTime t = timeline.start + static_cast<SimTime>(i) *
                                           timeline.bucket;
    printf("%6zu %7lld %9lld %7lld  %s\n", i,
           static_cast<long long>(t / kMillisecond),
           static_cast<long long>(timeline.commits[i]),
           static_cast<long long>(timeline.aborts[i]), phase_at(t));
  }
  printf("\nTakeaway: commits continue through both transitions (no "
         "zero-commit bucket); the GClock->GTM direction aborts nothing, "
         "and GTM->GClock only aborts stale in-flight GTM commits.\n");
  return 0;
}
