// Fig. 6a: TPC-C throughput, One-Region vs Three-City, baseline GaussDB vs
// GlobalDB. 100% local transactions (Section V-A).
//
// Paper shape: the baseline loses ~2/3 of its throughput moving to three
// cities; GlobalDB recovers to ~91% of the One-Region cluster and shows no
// regression when deployed One-Region.

#include "bench/bench_util.h"

using namespace globaldb;
using namespace globaldb::bench;

int main() {
  const SimDuration duration = BenchDuration();
  const int clients = BenchClients();
  TpccConfig config = MakeTpccConfig();
  config.remote_warehouse_fraction = 0.0;  // 100% local transactions

  struct Case {
    const char* label;
    SystemKind kind;
    bool three_city;
  };
  const Case cases[] = {
      {"Baseline One-Region", SystemKind::kBaseline, false},
      {"Baseline Three-City", SystemKind::kBaseline, true},
      {"GlobalDB Three-City", SystemKind::kGlobalDb, true},
      {"GlobalDB One-Region", SystemKind::kGlobalDb, false},
  };

  PrintHeader("Fig 6a: TPC-C, One-Region vs Three-City (100% local txns)",
              "system                     tpmC      rel_to_baseline_1R  "
              "p50_ms   p99_ms   abort%");
  double baseline_1r = 0;
  for (const Case& c : cases) {
    sim::Topology topology = c.three_city ? sim::Topology::ThreeCity()
                                          : sim::Topology::SingleRegion();
    RunResult r = RunTpcc(c.kind, topology, config, clients, duration);
    if (baseline_1r == 0) baseline_1r = r.tpm;
    printf("%-26s %9.0f %12.2f %12.1f %8.1f %8.1f\n", c.label, r.tpm,
           baseline_1r > 0 ? r.tpm / baseline_1r : 0.0, r.p50_ms, r.p99_ms,
           100.0 * r.stats.AbortRate());
    if (getenv("GDB_BENCH_DEBUG") != nullptr) {
      for (const auto& [reason, count] : r.stats.abort_reasons) {
        printf("    abort %8lld  %s\n", static_cast<long long>(count),
               reason.c_str());
      }
      for (auto& [kind, hist] : r.stats.latency_by_kind) {
        printf("    kind %-12s n=%6zu p50=%7.1fms p99=%8.1fms\n",
               kind.c_str(), hist.count(),
               hist.Percentile(50) / 1e6, hist.Percentile(99) / 1e6);
      }
    }
    fflush(stdout);
  }
  printf("\nPaper reference: Baseline 3-City ~ 1/3 of One-Region; "
         "GlobalDB 3-City ~ 0.91x One-Region; GlobalDB One-Region ~ 1.0x.\n");
  return 0;
}
