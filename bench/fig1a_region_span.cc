// Fig. 1a (motivation): OLTP throughput degrades as the cluster spans more
// distant regions. Runs the *baseline* system (centralized GTM + synchronous
// quorum replication) on a 3-region chain topology with growing inter-region
// latency.

#include "bench/bench_util.h"

using namespace globaldb;
using namespace globaldb::bench;

int main() {
  const SimDuration duration = BenchDuration();
  const int clients = BenchClients();
  TpccConfig config = MakeTpccConfig();

  struct Span {
    const char* label;
    SimDuration edge_rtt;
  };
  const Span spans[] = {
      {"same-rack", 100 * kMicrosecond}, {"same-city", 2 * kMillisecond},
      {"same-province", 10 * kMillisecond}, {"neighboring-cities", 25 * kMillisecond},
      {"distant-cities", 55 * kMillisecond}, {"cross-continent", 100 * kMillisecond},
  };

  PrintHeader("Fig 1a: baseline TPC-C throughput vs geographic span",
              "span                 edge_rtt_ms      tpmC   relative  p50_ms");
  double first = 0;
  for (const Span& span : spans) {
    RunResult r = RunTpcc(SystemKind::kBaseline,
                          sim::Topology::Chain(3, span.edge_rtt), config,
                          clients, duration);
    if (first == 0) first = r.tpm;
    printf("%-20s %10.1f %10.0f %9.2f %8.1f\n", span.label,
           static_cast<double>(span.edge_rtt) / kMillisecond, r.tpm,
           first > 0 ? r.tpm / first : 0.0, r.p50_ms);
    fflush(stdout);
  }
  printf("\nPaper reference: OLTP performance degrades steeply as the system "
         "spans more distant regions (Fig. 1a).\n");
  return 0;
}
