// Fig. 6d: Sysbench Point Select throughput vs injected delay, with 2/3 of
// tuples fetched from a remote node in the baseline.
//
// Paper shape: GlobalDB improves read throughput by up to ~8.9x by serving
// the reads from local replicas.

#include "bench/bench_util.h"

using namespace globaldb;
using namespace globaldb::bench;

int main() {
  const SimDuration duration = BenchDuration();
  // The paper drives 600 terminals; the achievable speedup is the ratio of
  // the (CPU-bound) replica-serving capacity to the latency-bound baseline,
  // so the client count directly scales the reported factor.
  const int clients =
      getenv("GDB_BENCH_CLIENTS") != nullptr ? BenchClients() : 600;
  SysbenchConfig config;
  config.num_tables = 25;       // scaled from the paper's 250 tables
  config.rows_per_table = 2500; // scaled from 25000 rows
  config.remote_fraction = 2.0 / 3.0;

  const SimDuration delays_ms[] = {0, 5, 10, 25, 50, 100};

  PrintHeader("Fig 6d: Sysbench Point Select throughput vs injected delay "
              "(2/3 remote tuples)",
              "delay_ms   baseline_tps   globaldb_tps   speedup");
  for (SimDuration d : delays_ms) {
    const SimDuration rtt = d * kMillisecond + 100 * kMicrosecond;
    // Model the full per-query SQL execution cost of the paper's stack
    // (parse/plan/execute ~ hundreds of us) so replica capacity saturates
    // at a realistic multiple of the baseline, as in the paper.
    auto tune = [&](SystemKind kind) {
      ClusterOptions o =
          MakeClusterOptions(kind, sim::Topology::Uniform(3, rtt));
      o.data_node.read_cost = 300 * kMicrosecond;
      o.replica_node.read_cost = 300 * kMicrosecond;
      return o;
    };
    RunResult baseline = RunSysbenchPointSelectWith(
        tune(SystemKind::kBaseline), config, clients, duration);
    RunResult globaldb = RunSysbenchPointSelectWith(
        tune(SystemKind::kGlobalDb), config, clients, duration);
    printf("%8lld %14.0f %14.0f %9.1fx\n", static_cast<long long>(d),
           baseline.tps, globaldb.tps,
           baseline.tps > 0 ? globaldb.tps / baseline.tps : 0.0);
    fflush(stdout);
  }
  printf("\nPaper reference: GlobalDB up to ~8.9x the baseline at high "
         "delay.\n");
  return 0;
}
