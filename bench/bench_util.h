#ifndef GLOBALDB_BENCH_BENCH_UTIL_H_
#define GLOBALDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "src/cluster/cluster.h"
#include "src/rpc/rpc_client.h"
#include "src/workload/driver.h"
#include "src/workload/sysbench.h"
#include "src/workload/tpcc.h"

namespace globaldb::bench {

/// Scaled-down run lengths so the full figure suite completes in minutes.
/// Override via environment: GDB_BENCH_DURATION_MS, GDB_BENCH_CLIENTS.
inline SimDuration BenchDuration() {
  const char* env = getenv("GDB_BENCH_DURATION_MS");
  return (env != nullptr ? atoll(env) : 2000) * kMillisecond;
}

inline int BenchClients() {
  const char* env = getenv("GDB_BENCH_CLIENTS");
  return env != nullptr ? atoi(env) : 360;
}

/// The two systems the paper compares.
enum class SystemKind {
  kBaseline,  // GaussDB: centralized GTM, synchronous quorum replication
              // (with a remote member), no ROR, stock TCP behavior
  kGlobalDb   // GClock, async replication, LZ redo compression, BBR,
              // Nagle off, read-on-replica
};

inline const char* SystemName(SystemKind kind) {
  return kind == SystemKind::kBaseline ? "Baseline-GaussDB" : "GlobalDB";
}

/// Cluster sizing shared by all figure benches: 3 CNs, 6 primary DNs,
/// 12 replica DNs — the paper's layout (Section V).
inline ClusterOptions MakeClusterOptions(SystemKind kind,
                                         sim::Topology topology) {
  ClusterOptions o;
  o.topology = std::move(topology);
  o.num_shards = 6;
  o.cns_per_region = static_cast<uint32_t>(
      3 / o.topology.num_regions() + (3 % o.topology.num_regions() ? 1 : 0));
  if (o.topology.num_regions() >= 3) o.cns_per_region = 1;
  o.replicas_per_shard = 2;

  // CPU model: calibrated so the One-Region cluster is CPU-bound at the
  // paper's client scale while geo latency dominates cross-city runs.
  o.data_node.cores = 2;
  o.data_node.read_cost = 25 * kMicrosecond;
  o.data_node.write_cost = 35 * kMicrosecond;
  o.data_node.commit_cost = 20 * kMicrosecond;
  o.replica_node.cores = 2;
  o.replica_node.read_cost = 25 * kMicrosecond;
  o.coordinator.cores = 4;
  o.coordinator.statement_cost = 5 * kMicrosecond;
  o.data_node.lock_timeout = 200 * kMillisecond;

  if (kind == SystemKind::kBaseline) {
    o.initial_mode = TimestampMode::kGtm;
    o.shipper.mode = ReplicationMode::kSyncQuorum;
    o.shipper.quorum_replicas = 1;  // nearest replica — remote in 3-city
    o.shipper.compression = CompressionType::kNone;
    o.network.nagle_enabled = true;
    o.network.bbr_enabled = false;
    o.coordinator.enable_ror = false;
  } else {
    o.initial_mode = TimestampMode::kGclock;
    o.shipper.mode = ReplicationMode::kAsync;
    o.shipper.compression = CompressionType::kLz;
    o.network.nagle_enabled = false;
    o.network.bbr_enabled = true;
    o.coordinator.enable_ror = true;
  }
  return o;
}

/// TPC-C scale for benches (warehouse count matches terminal count order,
/// as in the paper's 600/600 configuration, scaled 1:4).
inline TpccConfig MakeTpccConfig() {
  TpccConfig c;
  c.num_warehouses = 360;  // matches the default client count (paper: 600/600)
  c.districts_per_warehouse = 10;
  c.customers_per_district = 30;
  c.items = 1000;
  c.initial_orders_per_district = 8;
  return c;
}

struct RunResult {
  WorkloadStats stats;
  double tpm = 0;
  double tps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  /// Per-method RPC latency percentiles and retry counts aggregated across
  /// every client in the cluster (see FormatRpcStats).
  std::string rpc_stats;
};

/// Aggregates the `rpc.<method>.latency` / `rpc.<method>.retries` histograms
/// from every RPC client in a *started* cluster — CN call paths, timestamp
/// sources, RCP pollers, and log shippers — into one table, one method per
/// line with call count, p50/p95/p99 latency and total retries.
inline std::string FormatRpcStats(Cluster& cluster) {
  std::map<std::string, Histogram> latency;
  std::map<std::string, int64_t> retries;
  auto fold = [&](rpc::RpcClient& client) {
    for (auto& [name, hist] : client.metrics().histograms()) {
      if (name.rfind("rpc.", 0) != 0) continue;
      const std::string stem = name.substr(4);
      if (stem.size() <= 8) continue;
      const std::string method = stem.substr(0, stem.size() - 8);
      if (stem.compare(stem.size() - 8, 8, ".latency") == 0) {
        Histogram& merged = latency[method];
        for (int64_t v : hist.values()) merged.Record(v);
      } else if (stem.compare(stem.size() - 8, 8, ".retries") == 0) {
        for (int64_t v : hist.values()) retries[method] += v;
      }
    }
  };
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    CoordinatorNode& cn = cluster.cn(i);
    fold(cn.rpc_client());
    fold(cn.timestamp_source().rpc_client());
    fold(cn.rcp_service().rpc_client());
  }
  for (ShardId shard = 0; shard < cluster.num_shards(); ++shard) {
    LogShipper* shipper = cluster.data_node(shard).shipper();
    if (shipper != nullptr) fold(shipper->rpc_client());
  }

  std::string out =
      "    rpc method         calls  p50(us)  p95(us)  p99(us)  retries\n";
  char line[160];
  for (auto& [method, hist] : latency) {
    snprintf(line, sizeof(line),
             "    %-16s %8zu %8.0f %8.0f %8.0f %8lld\n", method.c_str(),
             hist.count(), hist.Percentile(50) / 1e3,
             hist.Percentile(95) / 1e3, hist.Percentile(99) / 1e3,
             static_cast<long long>(retries[method]));
    out += line;
  }
  return out;
}

/// Aggregates the commit-phase and write-batching histograms from every CN
/// (DESIGN.md §10 observability): per-phase commit latency (precommit /
/// commit-ts / phase-2), flushed batch sizes, and the GTM coalescing batch
/// sizes from the timestamp sources. One line per non-empty histogram, plus
/// a counter line for the 2PC outcome-recovery path (DESIGN.md §13):
/// coordinator phase-2 re-drives, promoted-primary outcome queries,
/// decision-memo duplicate hits, and promotion aborts split into
/// resolved-by-query vs presumed. Under epoch/group commit (DESIGN.md §15)
/// an extra line reports the seal batch sizes and latencies plus the OCC
/// abort count and the grouped phase-2 rounds amortized per committed
/// member.
inline std::string FormatCommitPhaseStats(Cluster& cluster) {
  const char* cn_hists[] = {"cn.precommit_us", "cn.commit_ts_us",
                            "cn.commit_phase2_us", "cn.write_batch_size",
                            "epoch.seal_batch_size", "epoch.seal_latency_us"};
  std::map<std::string, Histogram> merged;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    for (const char* name : cn_hists) {
      for (int64_t v : cluster.cn(i).metrics().Hist(name).values()) {
        merged[name].Record(v);
      }
    }
    for (int64_t v : cluster.cn(i)
                         .timestamp_source()
                         .metrics()
                         .Hist("ts.coalesce_batch")
                         .values()) {
      merged["ts.coalesce_batch"].Record(v);
    }
  }
  std::string out =
      "    txn path stat        count     mean      p50      p95      p99\n";
  char line[160];
  for (auto& [name, hist] : merged) {
    if (hist.count() == 0) continue;
    snprintf(line, sizeof(line),
             "    %-18s %8zu %8.1f %8lld %8lld %8lld\n", name.c_str(),
             hist.count(), hist.mean(),
             static_cast<long long>(hist.Percentile(50)),
             static_cast<long long>(hist.Percentile(95)),
             static_cast<long long>(hist.Percentile(99)));
    out += line;
  }
  int64_t commit_retries = 0;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    commit_retries += cluster.cn(i).metrics().Get("cn.commit_retries");
  }
  int64_t outcome_queries = 0;
  int64_t dedup_hits = 0;
  int64_t aborts_resolved = 0;
  int64_t aborts_presumed = 0;
  for (ShardId shard = 0; shard < cluster.num_shards(); ++shard) {
    Metrics& dn = cluster.data_node(shard).metrics();
    outcome_queries += dn.Get("dn.outcome_queries");
    dedup_hits += dn.Get("dn.decision_dedup_hits");
    aborts_resolved += dn.Get("dn.promotion_aborts_resolved");
    aborts_presumed += dn.Get("dn.promotion_aborts_presumed");
  }
  snprintf(line, sizeof(line),
           "    commit_retries=%lld outcome_queries=%lld "
           "decision_dedup_hits=%lld promotion_aborts_resolved=%lld "
           "promotion_aborts_presumed=%lld\n",
           static_cast<long long>(commit_retries),
           static_cast<long long>(outcome_queries),
           static_cast<long long>(dedup_hits),
           static_cast<long long>(aborts_resolved),
           static_cast<long long>(aborts_presumed));
  out += line;
  int64_t epoch_seals = 0;
  int64_t epoch_occ_aborts = 0;
  int64_t epoch_commit_rounds = 0;
  int64_t epoch_committed = 0;
  int64_t epoch_ts_rpcs = 0;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    Metrics& cn = cluster.cn(i).metrics();
    epoch_seals += cn.Get("epoch.seals");
    epoch_occ_aborts += cn.Get("epoch.occ_aborts");
    epoch_commit_rounds += cn.Get("epoch.commit_rounds");
    epoch_committed += cn.Get("epoch.committed_members");
    epoch_ts_rpcs += cn.Get("epoch.commit_ts_rpcs");
  }
  if (epoch_seals > 0) {
    snprintf(line, sizeof(line),
             "    epoch.seals=%lld epoch.occ_aborts=%lld "
             "epoch.commit_rounds_per_txn=%.3f epoch.commit_ts_rpcs=%lld\n",
             static_cast<long long>(epoch_seals),
             static_cast<long long>(epoch_occ_aborts),
             static_cast<double>(epoch_commit_rounds) /
                 static_cast<double>(std::max<int64_t>(1, epoch_committed)),
             static_cast<long long>(epoch_ts_rpcs));
    out += line;
  }
  return out;
}

/// Aggregates the read-path batching stats from every CN (DESIGN.md §11 and
/// §14 observability): the MultiGet batch-size and per-target fan-out
/// histograms, the ScanBatch size / fan-out / merged-row histograms, a
/// counter line with the flush-barrier count and the replica-vs-primary
/// split of the batch RPCs, and a scan line with the chunk count, the
/// server-side rows filtered out by predicate pushdown (summed across
/// primaries and replicas), and the pushdown-limit hit rate (ranges whose
/// scan stopped early at the pushed-down limit / ranges served).
inline std::string FormatReadPathStats(Cluster& cluster) {
  const char* cn_hists[] = {"cn.read_batch_size", "cn.multiget_fanout",
                            "cn.scan_batch_size", "cn.scan_fanout",
                            "cn.scan_merge_rows"};
  const char* cn_counters[] = {"cn.multigets", "cn.multiget_flush_barriers",
                               "cn.read_batch_replica",
                               "cn.read_batch_primary",
                               "cn.replica_failovers",
                               "cn.scan_batches",
                               "cn.scan_flush_barriers",
                               "cn.scan_chunks"};
  std::map<std::string, Histogram> merged;
  std::map<std::string, int64_t> counters;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    for (const char* name : cn_hists) {
      for (int64_t v : cluster.cn(i).metrics().Hist(name).values()) {
        merged[name].Record(v);
      }
    }
    for (const char* name : cn_counters) {
      counters[name] += cluster.cn(i).metrics().Get(name);
    }
  }
  std::string out =
      "    read path stat       count     mean      p50      p95      p99\n";
  char line[160];
  for (auto& [name, hist] : merged) {
    if (hist.count() == 0) continue;
    snprintf(line, sizeof(line),
             "    %-18s %8zu %8.1f %8lld %8lld %8lld\n", name.c_str(),
             hist.count(), hist.mean(),
             static_cast<long long>(hist.Percentile(50)),
             static_cast<long long>(hist.Percentile(95)),
             static_cast<long long>(hist.Percentile(99)));
    out += line;
  }
  snprintf(line, sizeof(line),
           "    multigets=%lld flush_barriers=%lld replica_batches=%lld "
           "primary_batches=%lld failovers=%lld\n",
           static_cast<long long>(counters["cn.multigets"]),
           static_cast<long long>(counters["cn.multiget_flush_barriers"]),
           static_cast<long long>(counters["cn.read_batch_replica"]),
           static_cast<long long>(counters["cn.read_batch_primary"]),
           static_cast<long long>(counters["cn.replica_failovers"]));
  out += line;
  int64_t scan_ranges = 0, scan_rows_filtered = 0, scan_limit_hits = 0;
  int64_t scan_join_lookups = 0;
  for (ShardId shard = 0; shard < cluster.num_shards(); ++shard) {
    Metrics& dn = cluster.data_node(shard).metrics();
    scan_ranges += dn.Get("dn.scan_ranges");
    scan_rows_filtered += dn.Get("dn.scan_rows_filtered");
    scan_limit_hits += dn.Get("dn.scan_limit_hits");
    scan_join_lookups += dn.Get("dn.scan_join_lookups");
    for (ReplicaNode* rep : cluster.replicas_of(shard)) {
      scan_ranges += rep->metrics().Get("ror.scan_ranges");
      scan_rows_filtered += rep->metrics().Get("ror.scan_rows_filtered");
      scan_limit_hits += rep->metrics().Get("ror.scan_limit_hits");
      scan_join_lookups += rep->metrics().Get("ror.scan_join_lookups");
    }
  }
  const double limit_hit_rate =
      scan_ranges > 0 ? static_cast<double>(scan_limit_hits) /
                            static_cast<double>(scan_ranges)
                      : 0.0;
  snprintf(line, sizeof(line),
           "    scan_batches=%lld scan_chunks=%lld scan_flush_barriers=%lld "
           "scan_rows_filtered=%lld scan_join_lookups=%lld "
           "limit_hit_rate=%.2f\n",
           static_cast<long long>(counters["cn.scan_batches"]),
           static_cast<long long>(counters["cn.scan_chunks"]),
           static_cast<long long>(counters["cn.scan_flush_barriers"]),
           static_cast<long long>(scan_rows_filtered),
           static_cast<long long>(scan_join_lookups), limit_hit_rate);
  out += line;
  return out;
}

/// Stands up a cluster, loads TPC-C, runs the mix, returns stats.
inline RunResult RunTpcc(SystemKind kind, sim::Topology topology,
                         TpccConfig config, int clients,
                         SimDuration duration, uint64_t seed = 7) {
  sim::Simulator sim(seed);
  Cluster cluster(&sim, MakeClusterOptions(kind, std::move(topology)));
  cluster.Start();
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();
  sim.RunFor(300 * kMillisecond);

  WorkloadDriver::Options options;
  options.clients = clients;
  options.warmup = 400 * kMillisecond;
  options.duration = duration;
  WorkloadDriver driver(&cluster, options);
  RunResult result;
  result.stats = driver.Run(tpcc.MixFn());
  if (getenv("GDB_BENCH_DEBUG") != nullptr) {
    int64_t dn_busy = 0, dn_queue = 0, lock_waits = 0, lock_timeouts = 0;
    int64_t replica_busy = 0;
    for (ShardId sh = 0; sh < cluster.num_shards(); ++sh) {
      dn_busy += cluster.data_node(sh).cpu().busy_ns();
      dn_queue += cluster.data_node(sh).cpu().queue_delay_ns();
      lock_waits += cluster.data_node(sh).locks().metrics().Get("lock.waits");
      lock_timeouts +=
          cluster.data_node(sh).locks().metrics().Get("lock.timeouts");
      for (ReplicaNode* rep : cluster.replicas_of(sh)) {
        replica_busy += rep->cpu().busy_ns();
      }
    }
    int64_t replica_reads = 0, primary_reads = 0;
    for (size_t i = 0; i < cluster.num_cns(); ++i) {
      replica_reads += cluster.cn(i).metrics().Get("cn.replica_reads");
      primary_reads += cluster.cn(i).metrics().Get("cn.primary_reads");
    }
    printf("    dn_busy=%.2fs dn_queue=%.2fs repl_busy=%.2fs lock_waits=%lld "
           "lock_timeouts=%lld repl_reads=%lld prim_reads=%lld\n",
           dn_busy / 1e9, dn_queue / 1e9, replica_busy / 1e9,
           (long long)lock_waits, (long long)lock_timeouts,
           (long long)replica_reads, (long long)primary_reads);
  }
  result.rpc_stats = FormatRpcStats(cluster);
  if (getenv("GDB_BENCH_RPC_STATS") != nullptr) {
    printf("%s%s%s", result.rpc_stats.c_str(),
           FormatCommitPhaseStats(cluster).c_str(),
           FormatReadPathStats(cluster).c_str());
  }
  result.tpm = result.stats.PerMinute();
  result.tps = result.stats.Throughput();
  result.p50_ms =
      static_cast<double>(result.stats.latency.Percentile(50)) / kMillisecond;
  result.p99_ms =
      static_cast<double>(result.stats.latency.Percentile(99)) / kMillisecond;
  return result;
}

/// Same for sysbench point select, with explicit cluster options.
inline RunResult RunSysbenchPointSelectWith(ClusterOptions cluster_options,
                                            SysbenchConfig config,
                                            int clients, SimDuration duration,
                                            uint64_t seed = 7) {
  sim::Simulator sim(seed);
  Cluster cluster(&sim, std::move(cluster_options));
  cluster.Start();
  SysbenchWorkload sysbench(&cluster, config);
  Status s = sysbench.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();
  sim.RunFor(300 * kMillisecond);

  WorkloadDriver::Options options;
  options.clients = clients;
  options.warmup = 500 * kMillisecond;
  options.duration = duration;
  WorkloadDriver driver(&cluster, options);
  RunResult result;
  result.stats = driver.Run(sysbench.PointSelectFn());
  result.rpc_stats = FormatRpcStats(cluster);
  if (getenv("GDB_BENCH_RPC_STATS") != nullptr) {
    printf("%s%s%s", result.rpc_stats.c_str(),
           FormatCommitPhaseStats(cluster).c_str(),
           FormatReadPathStats(cluster).c_str());
  }
  result.tpm = result.stats.PerMinute();
  result.tps = result.stats.Throughput();
  result.p50_ms =
      static_cast<double>(result.stats.latency.Percentile(50)) / kMillisecond;
  result.p99_ms =
      static_cast<double>(result.stats.latency.Percentile(99)) / kMillisecond;
  return result;
}

inline RunResult RunSysbenchPointSelect(SystemKind kind,
                                        sim::Topology topology,
                                        SysbenchConfig config, int clients,
                                        SimDuration duration,
                                        uint64_t seed = 7) {
  return RunSysbenchPointSelectWith(
      MakeClusterOptions(kind, std::move(topology)), config, clients,
      duration, seed);
}

inline void PrintHeader(const char* title, const char* columns) {
  printf("\n=== %s ===\n%s\n", title, columns);
}

}  // namespace globaldb::bench

#endif  // GLOBALDB_BENCH_BENCH_UTIL_H_
