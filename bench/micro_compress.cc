// Microbenchmarks (google-benchmark) for the redo compression hot path the
// log shipper sits on: LzCodec compress/decompress throughput and ratio on
// redo-shaped payloads (TPC-C-like repetitive rows and high-entropy rows),
// plus the end-to-end LogStream::EncodeBatch / DecodeBatch framing the
// shipper's encoded-batch cache amortizes across replicas.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/compression/lz.h"
#include "src/log/log_stream.h"
#include "src/log/redo_record.h"

namespace globaldb {
namespace {

/// TPC-C-shaped redo: repetitive column prefixes and skewed keys, the case
/// LZ is enabled for.
std::string MakeTpccPayload(int records) {
  Rng rng(2);
  std::string payload;
  for (int i = 0; i < records; ++i) {
    RedoRecord r = RedoRecord::Insert(
        i, 3, "warehouse_" + std::to_string(i % 20),
        "customer_row_payload_" + rng.AlphaString(20, 60));
    r.lsn = i + 1;
    r.EncodeTo(&payload);
  }
  return payload;
}

/// High-entropy redo values: the worst case, where compression must detect
/// expansion and the batch framing falls back to raw.
std::string MakeRandomPayload(int records) {
  Rng rng(4);
  std::string payload;
  for (int i = 0; i < records; ++i) {
    std::string value(80, '\0');
    for (char& c : value) c = static_cast<char>(rng.Next() & 0xff);
    RedoRecord r = RedoRecord::Insert(i, 3, "k" + std::to_string(rng.Next()),
                                      value);
    r.lsn = i + 1;
    r.EncodeTo(&payload);
  }
  return payload;
}

std::vector<RedoRecord> MakeRedoBatch(int records) {
  Rng rng(6);
  std::vector<RedoRecord> batch;
  batch.reserve(records);
  for (int i = 0; i < records; ++i) {
    RedoRecord r = RedoRecord::Insert(
        i, 3, "district_" + std::to_string(i % 200),
        "order_line_payload_" + rng.AlphaString(30, 80));
    r.lsn = i + 1;
    batch.push_back(std::move(r));
  }
  return batch;
}

void BM_CompressRedoTpcc(benchmark::State& state) {
  const std::string payload = MakeTpccPayload(static_cast<int>(state.range(0)));
  std::string out;
  for (auto _ : state) {
    LzCodec::Compress(payload, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
  state.counters["ratio"] =
      static_cast<double>(out.size()) / static_cast<double>(payload.size());
}
BENCHMARK(BM_CompressRedoTpcc)->Arg(100)->Arg(1000)->Arg(5000);

void BM_DecompressRedoTpcc(benchmark::State& state) {
  const std::string payload = MakeTpccPayload(static_cast<int>(state.range(0)));
  std::string compressed;
  LzCodec::Compress(payload, &compressed);
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCodec::Decompress(compressed, &out));
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_DecompressRedoTpcc)->Arg(100)->Arg(1000)->Arg(5000);

void BM_CompressRedoRandom(benchmark::State& state) {
  const std::string payload =
      MakeRandomPayload(static_cast<int>(state.range(0)));
  std::string out;
  for (auto _ : state) {
    LzCodec::Compress(payload, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
  state.counters["ratio"] =
      static_cast<double>(out.size()) / static_cast<double>(payload.size());
}
BENCHMARK(BM_CompressRedoRandom)->Arg(1000);

void BM_EncodeBatchLz(benchmark::State& state) {
  const std::vector<RedoRecord> batch =
      MakeRedoBatch(static_cast<int>(state.range(0)));
  size_t raw = 0;
  for (const RedoRecord& r : batch) raw += r.EncodedSize();
  std::string out;
  for (auto _ : state) {
    out = LogStream::EncodeBatch(batch, CompressionType::kLz);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * raw);
  state.counters["ratio"] =
      static_cast<double>(out.size()) / static_cast<double>(raw);
}
BENCHMARK(BM_EncodeBatchLz)->Arg(100)->Arg(2000);

void BM_EncodeBatchNone(benchmark::State& state) {
  const std::vector<RedoRecord> batch =
      MakeRedoBatch(static_cast<int>(state.range(0)));
  size_t raw = 0;
  for (const RedoRecord& r : batch) raw += r.EncodedSize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LogStream::EncodeBatch(batch, CompressionType::kNone));
  }
  state.SetBytesProcessed(state.iterations() * raw);
}
BENCHMARK(BM_EncodeBatchNone)->Arg(100)->Arg(2000);

void BM_DecodeBatchLz(benchmark::State& state) {
  const std::vector<RedoRecord> batch =
      MakeRedoBatch(static_cast<int>(state.range(0)));
  size_t raw = 0;
  for (const RedoRecord& r : batch) raw += r.EncodedSize();
  const std::string wire = LogStream::EncodeBatch(batch, CompressionType::kLz);
  std::vector<RedoRecord> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogStream::DecodeBatch(Slice(wire), &out));
  }
  state.SetBytesProcessed(state.iterations() * raw);
}
BENCHMARK(BM_DecodeBatchLz)->Arg(100)->Arg(2000);

}  // namespace
}  // namespace globaldb

BENCHMARK_MAIN();
