// Chaos timeline: latency and abort rate across a fleet-wide clock-sync
// outage on a GClock cluster. The health monitor detects the growing error
// bound, falls back to GTM automatically (commits keep flowing), and after
// the time service heals and the recovery dwell passes, returns the cluster
// to GClock. Buckets show the whole arc: healthy GClock -> degraded GClock
// (commit wait tracks the error bound) -> GTM -> GClock again.

#include <vector>

#include "bench/bench_util.h"
#include "src/chaos/fault_scheduler.h"

using namespace globaldb;
using namespace globaldb::bench;

namespace {

constexpr SimDuration kBucket = 250 * kMillisecond;
constexpr SimTime kOutageAt = 2 * kSecond;
constexpr SimTime kRestoreAt = 5 * kSecond;
constexpr SimTime kRunFor = 8 * kSecond;

struct Bucket {
  int64_t commits = 0;
  int64_t aborts = 0;
  Histogram latency;  // committed txns only
  TimestampMode mode = TimestampMode::kGclock;  // mode at bucket end
  SimDuration error_bound = 0;                  // max CN bound at bucket end
};

struct Timeline {
  SimTime start = 0;
  std::vector<Bucket> buckets;

  Bucket& At(SimTime when) {
    const size_t idx = static_cast<size_t>((when - start) / kBucket);
    if (buckets.size() <= idx) buckets.resize(idx + 1);
    return buckets[idx];
  }
};

sim::Task<void> Client(Cluster* cluster, TpccWorkload* tpcc, int cn_index,
                       uint64_t seed, Timeline* timeline, const bool* done) {
  Rng rng(seed);
  sim::Simulator* sim = cluster->simulator();
  CoordinatorNode* cn = &cluster->cn(cn_index);
  while (!*done) {
    const SimTime begin = sim->now();
    TxnResult result = co_await tpcc->Payment(cn, &rng);
    Bucket& bucket = timeline->At(sim->now());
    if (result.status.ok()) {
      bucket.commits++;
      bucket.latency.Record(sim->now() - begin);
    } else {
      bucket.aborts++;
    }
  }
}

const char* ModeName(TimestampMode mode) {
  switch (mode) {
    case TimestampMode::kGtm:
      return "GTM";
    case TimestampMode::kDual:
      return "DUAL";
    case TimestampMode::kGclock:
      return "GCLOCK";
    case TimestampMode::kEpoch:
      return "EPOCH";
  }
  return "?";
}

}  // namespace

int main() {
  sim::Simulator sim(53);
  ClusterOptions options =
      MakeClusterOptions(SystemKind::kGlobalDb, sim::Topology::ThreeCity());
  // Fast-drifting clocks so the fallback threshold is crossed ~0.5 s into
  // the outage (with the paper's 200 PPM it would take ~5 s — same arc,
  // longer timeline).
  options.clock.max_drift_ppm = 2000;
  options.health.probe_interval = 50 * kMillisecond;
  options.health.probe_timeout = 80 * kMillisecond;
  options.health.recover_dwell = 400 * kMillisecond;
  Cluster cluster(&sim, options);
  cluster.Start();

  TpccConfig config = MakeTpccConfig();
  config.num_warehouses = 120;
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();

  // Fleet-wide time-device outage (node unset = every CN's clock).
  chaos::FaultScheduler faults(&cluster);
  const SimTime base = sim.now();
  chaos::FaultEvent outage;
  outage.at = base + kOutageAt;
  outage.kind = chaos::FaultKind::kClockSyncOutage;
  faults.AddEvent(outage);
  chaos::FaultEvent restore = outage;
  restore.at = base + kRestoreAt;
  restore.kind = chaos::FaultKind::kClockSyncRestore;
  faults.AddEvent(restore);
  faults.Start();

  Timeline timeline;
  timeline.start = base;
  bool done = false;
  const int clients = 60;
  for (int c = 0; c < clients; ++c) {
    sim.Spawn(Client(&cluster, &tpcc, c % static_cast<int>(cluster.num_cns()),
                     1000 + c, &timeline, &done));
  }
  // Drive bucket by bucket so each bucket can snapshot the monitor's view.
  for (SimTime t = 0; t < kRunFor; t += kBucket) {
    sim.RunFor(kBucket);
    Bucket& bucket = timeline.At(sim.now() - 1);
    bucket.mode = cluster.health().mode();
    bucket.error_bound = cluster.health().last_max_error_bound();
  }
  done = true;
  sim.RunFor(500 * kMillisecond);

  PrintHeader(
      "Chaos: clock-sync outage -> automatic GTM fallback -> recovery "
      "(Payment transactions, Three-City)",
      "bucket  t_ms   commits aborts abort%  p50_ms  p99_ms  err_us  mode");
  for (size_t i = 0; i < timeline.buckets.size(); ++i) {
    Bucket& b = timeline.buckets[i];
    const SimTime t = static_cast<SimTime>(i) * kBucket;
    const double total = static_cast<double>(b.commits + b.aborts);
    const char* marker =
        t <= kOutageAt && kOutageAt < t + kBucket    ? "  << outage"
        : t <= kRestoreAt && kRestoreAt < t + kBucket ? "  << sync restored"
                                                      : "";
    printf("%6zu %6lld %8lld %6lld %6.1f %7.2f %7.2f %7.0f  %s%s\n", i,
           static_cast<long long>(t / kMillisecond),
           static_cast<long long>(b.commits),
           static_cast<long long>(b.aborts),
           total > 0 ? 100.0 * b.aborts / total : 0.0,
           b.latency.Percentile(50) / 1e6, b.latency.Percentile(99) / 1e6,
           static_cast<double>(b.error_bound) / 1e3, ModeName(b.mode),
           marker);
  }

  Metrics& health = cluster.health().metrics();
  printf("\nhealth: probes=%lld misses=%lld fallback_to_gtm=%lld "
         "return_to_gclock=%lld\n",
         static_cast<long long>(health.Get("health.probes")),
         static_cast<long long>(health.Get("health.probe_misses")),
         static_cast<long long>(health.Get("health.fallback_to_gtm")),
         static_cast<long long>(health.Get("health.return_to_gclock")));
  printf("\n%s", FormatRpcStats(cluster).c_str());
  printf("\nTakeaway: commits never stop. During the outage GClock commit "
         "wait tracks the growing error bound until the monitor falls back "
         "to GTM; latency then settles at the GTM cost until the clocks "
         "heal and the cluster returns to GClock.\n");
  return 0;
}
