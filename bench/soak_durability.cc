// Durability-lifecycle soak (DESIGN.md §12): TPC-C on the Three-City
// cluster (~50 ms RTT) for 10 simulated minutes with checkpoints every 5 s,
// sampling the retained redo-log bytes and the reclaimable MVCC garbage
// (versions minus distinct rows) the whole way. A correct checkpointer /
// truncation / vacuum pipeline flat-lines both; a leak grows them linearly.
//
// Midway through, three shard primaries are crashed (one at a time) with
// failover enabled: the bench measures crash-to-promotion latency and
// reports its median, which the acceptance gate bounds at 10x the RTT.
//
// Environment: GDB_SOAK_DURATION_MS (default 600000 = 10 sim minutes),
// GDB_SOAK_CLIENTS (default 12), GDB_SOAK_JSON=<path> to write the JSON
// summary (BENCH_durability.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"

using namespace globaldb;
using namespace globaldb::bench;

namespace {

struct Sample {
  double at_s = 0;
  int64_t log_bytes = 0;        // retained redo across primary streams
  int64_t dead_versions = 0;    // versions - rows, primaries + replicas
  int64_t live_versions = 0;
};

int64_t RetainedLogBytes(Cluster& cluster) {
  int64_t total = 0;
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    total += static_cast<int64_t>(cluster.data_node(s).log().retained_bytes());
  }
  return total;
}

int64_t DeadVersions(Cluster& cluster) {
  // A fully-vacuumed (deleted) row keeps its empty chain, so versions can
  // undershoot keys; clamp per store to keep the garbage gauge >= 0.
  auto dead = [](const ShardStore& store) {
    const int64_t d = static_cast<int64_t>(store.VersionCount()) -
                      static_cast<int64_t>(store.KeyCount());
    return std::max<int64_t>(d, 0);
  };
  int64_t total = 0;
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    total += dead(cluster.data_node(s).store());
    for (uint32_t r = 0; r < cluster.options().replicas_per_shard; ++r) {
      total += dead(cluster.replica(s, r).store());
    }
  }
  return total;
}

int64_t LiveVersions(Cluster& cluster) {
  int64_t total = 0;
  for (ShardId s = 0; s < cluster.num_shards(); ++s) {
    total += static_cast<int64_t>(cluster.data_node(s).store().VersionCount());
  }
  return total;
}

/// Open-loop TPC-C terminal: runs the mix back-to-back until stopped.
sim::Task<void> ClientLoop(CoordinatorNode* cn, TxnFn fn, Rng* rng,
                           int64_t* committed, const bool* stop) {
  while (!*stop) {
    TxnResult result = co_await fn(cn, rng);
    if (result.status.ok()) ++*committed;
  }
}

/// Max of a gauge over the samples with at_s in [from_s, to_s).
int64_t WindowMax(const std::vector<Sample>& samples, double from_s,
                  double to_s, int64_t Sample::*field) {
  int64_t best = 0;
  for (const Sample& s : samples) {
    if (s.at_s >= from_s && s.at_s < to_s) best = std::max(best, s.*field);
  }
  return best;
}

}  // namespace

int main() {
  const char* env_ms = getenv("GDB_SOAK_DURATION_MS");
  const SimDuration soak =
      (env_ms != nullptr ? atoll(env_ms) : 600000) * kMillisecond;
  const char* env_clients = getenv("GDB_SOAK_CLIENTS");
  const int clients = env_clients != nullptr ? atoi(env_clients) : 12;

  sim::Simulator sim(41);
  ClusterOptions options =
      MakeClusterOptions(SystemKind::kGlobalDb, sim::Topology::ThreeCity());
  options.data_node.checkpoint_interval = 5 * kSecond;
  options.health.primary_failover = true;
  options.health.probe_interval = 40 * kMillisecond;
  options.health.probe_timeout = 120 * kMillisecond;
  options.health.primary_miss_threshold = 2;
  Cluster cluster(&sim, options);
  cluster.Start();

  // Small TPC-C scale: the soak watches steady-state garbage, not peak
  // throughput, and 10 simulated minutes at figure scale would take hours.
  TpccConfig config;
  config.num_warehouses = clients;
  config.districts_per_warehouse = 4;
  config.customers_per_district = 20;
  config.items = 200;
  config.initial_orders_per_district = 4;
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();
  sim.RunFor(500 * kMillisecond);

  bool stop = false;
  int64_t committed = 0;
  std::vector<std::unique_ptr<Rng>> rngs;
  const TxnFn mix = tpcc.MixFn();
  for (int c = 0; c < clients; ++c) {
    rngs.push_back(std::make_unique<Rng>(1000 + c));
    sim.Spawn(ClientLoop(&cluster.cn(c % cluster.num_cns()), mix,
                         rngs.back().get(), &committed, &stop));
  }

  // Crash a primary at 50% / 65% / 80% of the soak (shards 0, 1, 2) and
  // time each crash-to-promotion interval.
  const double fractions[] = {0.50, 0.65, 0.80};
  const double soak_s = static_cast<double>(soak) / kSecond;
  std::vector<double> recovery_ms;
  std::vector<Sample> samples;
  const SimTime start = sim.now();
  size_t next_crash = 0;
  // 3-second sampling: each sample walks every version chain in the cluster
  // (VersionCount), so 1 s granularity makes the 10-minute run needlessly
  // slow — but the cadence must stay coprime with the 5 s checkpoint/vacuum
  // period. A 5 s cadence locks onto one phase of the vacuum cycle, and a
  // promotion restarts the checkpointer at an arbitrary phase: the window
  // maxima then compare just-after-vacuum floors against just-before-vacuum
  // peaks and report 30x "growth" on a perfectly flat run.
  while (sim.now() - start < soak) {
    sim.RunFor(3 * kSecond);
    const double at_s = static_cast<double>(sim.now() - start) / kSecond;
    samples.push_back({at_s, RetainedLogBytes(cluster), DeadVersions(cluster),
                       LiveVersions(cluster)});
    if (next_crash < 3 && at_s >= fractions[next_crash] * soak_s) {
      const ShardId shard = static_cast<ShardId>(next_crash);
      const NodeId old_primary = cluster.primary_node_id(shard);
      cluster.network().SetNodeUp(old_primary, false);
      const SimTime crashed_at = sim.now();
      while (cluster.primary_node_id(shard) == old_primary &&
             sim.now() - crashed_at < 10 * kSecond) {
        sim.RunFor(1 * kMillisecond);
      }
      GDB_CHECK(cluster.primary_node_id(shard) != old_primary)
          << "shard " << shard << " never promoted";
      recovery_ms.push_back(static_cast<double>(sim.now() - crashed_at) /
                            kMillisecond);
      ++next_crash;
    }
  }
  stop = true;
  sim.RunFor(500 * kMillisecond);

  GDB_CHECK(committed > 0) << "workload never committed";
  GDB_CHECK(recovery_ms.size() == 3) << "soak too short for crash schedule";
  std::vector<double> sorted = recovery_ms;
  std::sort(sorted.begin(), sorted.end());
  const double recovery_p50_ms = sorted[1];

  // Flat-line ratios: the steady-state window before the crashes against
  // the tail of the run. Growth shows up as ratio >> 1.
  const int64_t log_a =
      WindowMax(samples, 0.15 * soak_s, 0.45 * soak_s, &Sample::log_bytes);
  const int64_t log_b =
      WindowMax(samples, 0.55 * soak_s, soak_s + 1, &Sample::log_bytes);
  const int64_t dead_a =
      WindowMax(samples, 0.15 * soak_s, 0.45 * soak_s, &Sample::dead_versions);
  const int64_t dead_b =
      WindowMax(samples, 0.55 * soak_s, soak_s + 1, &Sample::dead_versions);
  const double log_ratio =
      log_a > 0 ? static_cast<double>(log_b) / static_cast<double>(log_a) : 0;
  const double dead_ratio =
      dead_a > 0 ? static_cast<double>(dead_b) / static_cast<double>(dead_a)
                 : 0;

  int64_t gced = 0, checkpoint_skips = 0;
  for (ShardId sh = 0; sh < cluster.num_shards(); ++sh) {
    gced += cluster.data_node(sh).metrics().Get("storage.versions_gced");
    checkpoint_skips +=
        cluster.data_node(sh).metrics().Get("durability.checkpoint_skips");
  }
  const int64_t promotions =
      cluster.health().metrics().Get("health.promotions");
  // 2PC outcome recovery across the three promotions (DESIGN.md §13):
  // coordinator phase-2 re-drives plus the promoted primaries' in-doubt
  // resolution work. Every inherited in-doubt transaction must be settled
  // by the end of the soak.
  int64_t commit_retries = 0;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    commit_retries += cluster.cn(i).metrics().Get("cn.commit_retries");
  }
  int64_t in_doubt_inherited = 0, outcome_queries = 0, in_doubt_commits = 0;
  int64_t aborts_resolved = 0, aborts_presumed = 0, in_doubt_open = 0;
  for (ShardId sh = 0; sh < cluster.num_shards(); ++sh) {
    Metrics& dn = cluster.data_node(sh).metrics();
    in_doubt_inherited += dn.Get("dn.promotion_in_doubt");
    outcome_queries += dn.Get("dn.outcome_queries");
    in_doubt_commits += dn.Get("dn.promotion_commits");
    aborts_resolved += dn.Get("dn.promotion_aborts_resolved");
    aborts_presumed += dn.Get("dn.promotion_aborts_presumed");
    in_doubt_open +=
        static_cast<int64_t>(cluster.data_node(sh).in_doubt_count());
  }
  GDB_CHECK(in_doubt_open == 0)
      << in_doubt_open << " transactions still in doubt after the soak";
  const Sample& last = samples.back();

  printf("=== Durability soak: %.0f sim-seconds TPC-C, checkpoint every 5 s, "
         "3 primary crashes ===\n",
         soak_s);
  printf("committed_txns        %lld\n", static_cast<long long>(committed));
  printf("retained_log_bytes    window_a=%lld window_b=%lld ratio=%.2f "
         "(final %lld)\n",
         static_cast<long long>(log_a), static_cast<long long>(log_b),
         log_ratio, static_cast<long long>(last.log_bytes));
  printf("dead_versions         window_a=%lld window_b=%lld ratio=%.2f "
         "(final %lld, live %lld)\n",
         static_cast<long long>(dead_a), static_cast<long long>(dead_b),
         dead_ratio, static_cast<long long>(last.dead_versions),
         static_cast<long long>(last.live_versions));
  printf("versions_gced         %lld (checkpoint_skips %lld)\n",
         static_cast<long long>(gced),
         static_cast<long long>(checkpoint_skips));
  printf("promotions            %lld\n", static_cast<long long>(promotions));
  printf("commit_retries        %lld\n",
         static_cast<long long>(commit_retries));
  printf("in_doubt              inherited=%lld queries=%lld commits=%lld "
         "aborts_resolved=%lld aborts_presumed=%lld\n",
         static_cast<long long>(in_doubt_inherited),
         static_cast<long long>(outcome_queries),
         static_cast<long long>(in_doubt_commits),
         static_cast<long long>(aborts_resolved),
         static_cast<long long>(aborts_presumed));
  printf("recovery_ms           %.1f %.1f %.1f  (p50 %.1f)\n", recovery_ms[0],
         recovery_ms[1], recovery_ms[2], recovery_p50_ms);

  if (const char* json_path = getenv("GDB_SOAK_JSON")) {
    FILE* f = fopen(json_path, "w");
    GDB_CHECK(f != nullptr) << "cannot write " << json_path;
    fprintf(f,
            "{\n"
            "  \"sim_seconds\": %.0f,\n"
            "  \"clients\": %d,\n"
            "  \"checkpoint_interval_s\": 5,\n"
            "  \"rtt_ms\": 50,\n"
            "  \"committed_txns\": %lld,\n"
            "  \"retained_log_bytes\": {\"window_a\": %lld, \"window_b\": "
            "%lld, \"ratio\": %.3f, \"final\": %lld},\n"
            "  \"dead_versions\": {\"window_a\": %lld, \"window_b\": %lld, "
            "\"ratio\": %.3f, \"final\": %lld},\n"
            "  \"live_versions_final\": %lld,\n"
            "  \"versions_gced\": %lld,\n"
            "  \"promotions\": %lld,\n"
            "  \"commit_retries\": %lld,\n"
            "  \"in_doubt\": {\"inherited\": %lld, \"outcome_queries\": %lld, "
            "\"commits\": %lld, \"aborts_resolved\": %lld, "
            "\"aborts_presumed\": %lld, \"open\": %lld},\n"
            "  \"recovery_ms\": [%.1f, %.1f, %.1f],\n"
            "  \"recovery_p50_ms\": %.1f\n"
            "}\n",
            soak_s, clients, static_cast<long long>(committed),
            static_cast<long long>(log_a), static_cast<long long>(log_b),
            log_ratio, static_cast<long long>(last.log_bytes),
            static_cast<long long>(dead_a), static_cast<long long>(dead_b),
            dead_ratio, static_cast<long long>(last.dead_versions),
            static_cast<long long>(last.live_versions),
            static_cast<long long>(gced), static_cast<long long>(promotions),
            static_cast<long long>(commit_retries),
            static_cast<long long>(in_doubt_inherited),
            static_cast<long long>(outcome_queries),
            static_cast<long long>(in_doubt_commits),
            static_cast<long long>(aborts_resolved),
            static_cast<long long>(aborts_presumed),
            static_cast<long long>(in_doubt_open),
            recovery_ms[0], recovery_ms[1], recovery_ms[2], recovery_p50_ms);
    fclose(f);
  }
  return 0;
}
