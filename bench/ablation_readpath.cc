// Ablation: the batched read path (DESIGN.md §11) — MultiGet grouping
// independent point reads per shard and fanning the groups out in
// parallel (kDnReadBatch / kRorReadBatch) instead of one round trip per
// key — measured on read-only TPC-C (Order-status + Stock-level, 50%
// multi-shard) over a MultiGet on/off × ROR on/off × 10/50/100 ms RTT
// grid on a 3-region uniform topology.
//
// A second section holds the acceptance pair: TPC-C NewOrder (GTM mode,
// remote home warehouses, write batching on in both variants) with
// MultiGet off vs on at 50 ms RTT — the item/stock read loop is the
// serial-RTT hot spot the batch collapses — plus the read-only TPC-C
// throughput non-regression pair with ROR on.
//
// With GDB_READPATH_GATE_ONLY set, only the acceptance pairs run (the
// check.sh smoke path); with GDB_READPATH_JSON=<path>, their numbers are
// written as JSON (BENCH_readpath.json).

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

using namespace globaldb;
using namespace globaldb::bench;

namespace {

struct ReadPathResult {
  RunResult run;
  double reads_per_batch = 0;
};

/// Read-only TPC-C with the grid's two ablation axes (MultiGet, ROR).
ReadPathResult RunReadOnly(bool multiget, bool ror, SimDuration rtt,
                           TpccConfig config, int clients,
                           SimDuration duration) {
  sim::Simulator sim(53);
  ClusterOptions options =
      MakeClusterOptions(SystemKind::kGlobalDb, sim::Topology::Uniform(3, rtt));
  options.coordinator.enable_read_batching = multiget;
  options.coordinator.enable_ror = ror;
  Cluster cluster(&sim, options);
  cluster.Start();
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();
  sim.RunFor(300 * kMillisecond);

  WorkloadDriver::Options driver_options;
  driver_options.clients = clients;
  driver_options.warmup = std::max<SimDuration>(400 * kMillisecond, 8 * rtt);
  driver_options.duration = std::max<SimDuration>(duration, 50 * rtt);
  WorkloadDriver driver(&cluster, driver_options);
  ReadPathResult result;
  result.run.stats = driver.Run(tpcc.MixFn());
  result.run.tpm = result.run.stats.PerMinute();
  result.run.tps = result.run.stats.Throughput();
  result.run.p50_ms =
      static_cast<double>(result.run.stats.latency.Percentile(50)) /
      kMillisecond;
  result.run.p99_ms =
      static_cast<double>(result.run.stats.latency.Percentile(99)) /
      kMillisecond;
  Histogram batch_sizes;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    for (int64_t v :
         cluster.cn(i).metrics().Hist("cn.read_batch_size").values()) {
      batch_sizes.Record(v);
    }
  }
  result.reads_per_batch = batch_sizes.mean();
  if (getenv("GDB_BENCH_RPC_STATS") != nullptr) {
    printf("%s%s", FormatRpcStats(cluster).c_str(),
           FormatReadPathStats(cluster).c_str());
  }
  return result;
}

/// The latency gate: NewOrder under GTM with every home warehouse behind
/// a WAN link. Write batching stays on in both variants so the measured
/// delta is purely the item/stock read loop going from ~2 serial RTTs per
/// order line to one batched fan-out.
ReadPathResult RunNewOrder(bool multiget, SimDuration rtt, TpccConfig config,
                           int clients, SimDuration duration) {
  sim::Simulator sim(47);
  ClusterOptions options =
      MakeClusterOptions(SystemKind::kGlobalDb, sim::Topology::Uniform(3, rtt));
  options.initial_mode = TimestampMode::kGtm;
  options.coordinator.enable_write_batching = true;
  options.coordinator.enable_read_batching = multiget;
  Cluster cluster(&sim, options);
  cluster.Start();
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();
  sim.RunFor(300 * kMillisecond);

  WorkloadDriver::Options driver_options;
  driver_options.clients = clients;
  driver_options.warmup = std::max<SimDuration>(400 * kMillisecond, 8 * rtt);
  driver_options.duration = std::max<SimDuration>(duration, 50 * rtt);
  WorkloadDriver driver(&cluster, driver_options);
  ReadPathResult result;
  result.run.stats = driver.Run(
      [&tpcc](CoordinatorNode* cn, Rng* rng) { return tpcc.NewOrder(cn, rng); });
  result.run.tpm = result.run.stats.PerMinute();
  result.run.tps = result.run.stats.Throughput();
  result.run.p50_ms =
      static_cast<double>(result.run.stats.latency.Percentile(50)) /
      kMillisecond;
  result.run.p99_ms =
      static_cast<double>(result.run.stats.latency.Percentile(99)) /
      kMillisecond;
  if (getenv("GDB_BENCH_RPC_STATS") != nullptr) {
    printf("%s%s", FormatRpcStats(cluster).c_str(),
           FormatReadPathStats(cluster).c_str());
  }
  return result;
}

/// Scan-path ablation (DESIGN.md §14): one scan-heavy TPC-C profile —
/// Delivery (10 per-district oldest-new-order scans + order-line scans) or
/// Stock-level (last-20-orders order-line scan + stock lookup join) —
/// driven alone, with the batched scan path on or off. ROR picks whether
/// read-only scans land on replicas or primaries.
ReadPathResult RunScanProfile(bool delivery, bool scan_batch, bool ror,
                              SimDuration rtt, TpccConfig config, int clients,
                              SimDuration duration) {
  sim::Simulator sim(59);
  ClusterOptions options =
      MakeClusterOptions(SystemKind::kGlobalDb, sim::Topology::Uniform(3, rtt));
  options.coordinator.enable_scan_batching = scan_batch;
  options.coordinator.enable_ror = ror;
  Cluster cluster(&sim, options);
  cluster.Start();
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();
  sim.RunFor(300 * kMillisecond);

  WorkloadDriver::Options driver_options;
  driver_options.clients = clients;
  driver_options.warmup = std::max<SimDuration>(400 * kMillisecond, 8 * rtt);
  driver_options.duration = std::max<SimDuration>(duration, 50 * rtt);
  WorkloadDriver driver(&cluster, driver_options);
  ReadPathResult result;
  result.run.stats = driver.Run(
      [&tpcc, delivery](CoordinatorNode* cn, Rng* rng) -> sim::Task<TxnResult> {
        if (delivery) return tpcc.Delivery(cn, rng);
        return tpcc.StockLevel(cn, rng);
      });
  result.run.tpm = result.run.stats.PerMinute();
  result.run.tps = result.run.stats.Throughput();
  result.run.p50_ms =
      static_cast<double>(result.run.stats.latency.Percentile(50)) /
      kMillisecond;
  result.run.p99_ms =
      static_cast<double>(result.run.stats.latency.Percentile(99)) /
      kMillisecond;
  Histogram batch_sizes;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    for (int64_t v :
         cluster.cn(i).metrics().Hist("cn.scan_batch_size").values()) {
      batch_sizes.Record(v);
    }
  }
  result.reads_per_batch = batch_sizes.mean();
  if (getenv("GDB_BENCH_RPC_STATS") != nullptr) {
    printf("%s%s", FormatRpcStats(cluster).c_str(),
           FormatReadPathStats(cluster).c_str());
  }
  return result;
}

}  // namespace

int main() {
  const bool gate_only = getenv("GDB_READPATH_GATE_ONLY") != nullptr;
  const SimDuration duration = BenchDuration();
  const int clients = BenchClients();
  TpccConfig readonly_config = MakeTpccConfig();
  readonly_config.read_only_mix = true;  // Order-status + Stock-level only
  readonly_config.read_only_multi_shard_fraction = 0.5;

  if (!gate_only) {
    PrintHeader("Ablation: batched read path (read-only TPC-C, 3-region "
                "uniform RTT)",
                "ror   rtt_ms  multiget       txn/s   p50_ms   p99_ms  "
                "reads/batch");
    const SimDuration rtts[] = {10 * kMillisecond, 50 * kMillisecond,
                                100 * kMillisecond};
    for (bool ror : {false, true}) {
      for (SimDuration rtt : rtts) {
        for (bool multiget : {false, true}) {
          ReadPathResult r = RunReadOnly(multiget, ror, rtt, readonly_config,
                                         clients, duration);
          printf("%-5s %6lld  %-8s %11.0f %8.1f %8.1f %12.1f\n",
                 ror ? "on" : "off", static_cast<long long>(rtt / kMillisecond),
                 multiget ? "on" : "off", r.run.tps, r.run.p50_ms,
                 r.run.p99_ms, r.reads_per_batch);
          fflush(stdout);
        }
      }
    }

    PrintHeader("Ablation: batched scan path (TPC-C Delivery / Stock-level, "
                "3-region uniform RTT)",
                "profile     ror   rtt_ms  scanbatch      txn/s   p50_ms  "
                " p99_ms  specs/batch");
    const SimDuration scan_rtts[] = {10 * kMillisecond, 50 * kMillisecond,
                                     100 * kMillisecond};
    for (bool delivery : {true, false}) {
      for (bool ror : {false, true}) {
        for (SimDuration rtt : scan_rtts) {
          for (bool scan_batch : {false, true}) {
            ReadPathResult r =
                RunScanProfile(delivery, scan_batch, ror, rtt,
                               MakeTpccConfig(), clients, duration);
            printf("%-10s %-5s %6lld  %-8s %11.0f %8.1f %8.1f %12.1f\n",
                   delivery ? "delivery" : "stocklevel", ror ? "on" : "off",
                   static_cast<long long>(rtt / kMillisecond),
                   scan_batch ? "on" : "off", r.run.tps, r.run.p50_ms,
                   r.run.p99_ms, r.reads_per_batch);
            fflush(stdout);
          }
        }
      }
    }
  }

  // Acceptance pair 1: NewOrder p50 latency, MultiGet off vs on at 50 ms.
  TpccConfig neworder_config = MakeTpccConfig();
  neworder_config.remote_warehouse_fraction = 1.0;
  PrintHeader("Read batching latency gate (NewOrder, GTM, 50 ms RTT)",
              "multiget   NewOrder/min   p50_ms   p99_ms");
  ReadPathResult no_off = RunNewOrder(false, 50 * kMillisecond,
                                      neworder_config, clients, duration);
  printf("%-8s %14.0f %8.1f %8.1f\n", "off", no_off.run.tpm,
         no_off.run.p50_ms, no_off.run.p99_ms);
  fflush(stdout);
  ReadPathResult no_on = RunNewOrder(true, 50 * kMillisecond, neworder_config,
                                     clients, duration);
  printf("%-8s %14.0f %8.1f %8.1f\n", "on", no_on.run.tpm, no_on.run.p50_ms,
         no_on.run.p99_ms);
  const double p50_ratio =
      no_on.run.p50_ms > 0 ? no_off.run.p50_ms / no_on.run.p50_ms : 0;
  printf("p50 reduction (off/on): %.2fx\n", p50_ratio);

  // Acceptance pair 2: read-only TPC-C throughput with ROR must not
  // regress when batching turns on (the fig6c configuration).
  PrintHeader("Read-only throughput gate (ROR on, 50 ms RTT)",
              "multiget       txn/s   p50_ms");
  ReadPathResult ro_off = RunReadOnly(false, true, 50 * kMillisecond,
                                      readonly_config, clients, duration);
  printf("%-8s %11.0f %8.1f\n", "off", ro_off.run.tps, ro_off.run.p50_ms);
  fflush(stdout);
  ReadPathResult ro_on = RunReadOnly(true, true, 50 * kMillisecond,
                                     readonly_config, clients, duration);
  printf("%-8s %11.0f %8.1f\n", "on", ro_on.run.tps, ro_on.run.p50_ms);
  const double tps_ratio =
      ro_off.run.tps > 0 ? ro_on.run.tps / ro_off.run.tps : 0;
  printf("throughput ratio (on/off): %.3f   reads/batch: %.1f\n", tps_ratio,
         ro_on.reads_per_batch);

  // Acceptance pairs 3 and 4: the scan-heavy TPC-C profiles at 50 ms RTT,
  // batched scan path off vs on. Delivery's 10 serial per-district
  // oldest-new-order scans (plus per-order order-line scans) collapse into
  // per-phase fan-outs; Stock-level's district-read -> order-line-scan ->
  // stock-read chain collapses into one pushed-down scan+join.
  PrintHeader("Scan batching latency gate (Delivery, remote warehouses, "
              "50 ms RTT)",
              "scanbatch   Delivery/min   p50_ms   p99_ms");
  // Home warehouses behind a WAN link and primary routing: the gate
  // measures serial scan round trips collapsing into fan-outs, not local
  // CPU cost.
  TpccConfig scan_config = MakeTpccConfig();
  scan_config.remote_warehouse_fraction = 1.0;
  ReadPathResult dl_off = RunScanProfile(/*delivery=*/true, false, false,
                                         50 * kMillisecond, scan_config,
                                         clients, duration);
  printf("%-8s %14.0f %8.1f %8.1f\n", "off", dl_off.run.tpm, dl_off.run.p50_ms,
         dl_off.run.p99_ms);
  fflush(stdout);
  ReadPathResult dl_on = RunScanProfile(/*delivery=*/true, true, false,
                                        50 * kMillisecond, scan_config,
                                        clients, duration);
  printf("%-8s %14.0f %8.1f %8.1f\n", "on", dl_on.run.tpm, dl_on.run.p50_ms,
         dl_on.run.p99_ms);
  const double delivery_ratio =
      dl_on.run.p50_ms > 0 ? dl_off.run.p50_ms / dl_on.run.p50_ms : 0;
  printf("p50 reduction (off/on): %.2fx\n", delivery_ratio);

  PrintHeader("Scan batching latency gate (Stock-level, remote warehouses, "
              "50 ms RTT)",
              "scanbatch   StockLevel/min   p50_ms   p99_ms");
  ReadPathResult sl_off = RunScanProfile(/*delivery=*/false, false, false,
                                         50 * kMillisecond, scan_config,
                                         clients, duration);
  printf("%-8s %16.0f %8.1f %8.1f\n", "off", sl_off.run.tpm, sl_off.run.p50_ms,
         sl_off.run.p99_ms);
  fflush(stdout);
  ReadPathResult sl_on = RunScanProfile(/*delivery=*/false, true, false,
                                        50 * kMillisecond, scan_config,
                                        clients, duration);
  printf("%-8s %16.0f %8.1f %8.1f\n", "on", sl_on.run.tpm, sl_on.run.p50_ms,
         sl_on.run.p99_ms);
  const double stocklevel_ratio =
      sl_on.run.p50_ms > 0 ? sl_off.run.p50_ms / sl_on.run.p50_ms : 0;
  printf("p50 reduction (off/on): %.2fx   specs/batch: %.1f\n",
         stocklevel_ratio, sl_on.reads_per_batch);

  if (const char* json_path = getenv("GDB_READPATH_JSON")) {
    FILE* f = fopen(json_path, "w");
    GDB_CHECK(f != nullptr) << "cannot write " << json_path;
    fprintf(f,
            "{\n"
            "  \"rtt_ms\": 50,\n"
            "  \"neworder_multiget_off\": {\"neworder_per_min\": %.1f, "
            "\"p50_ms\": %.2f, \"p99_ms\": %.2f},\n"
            "  \"neworder_multiget_on\": {\"neworder_per_min\": %.1f, "
            "\"p50_ms\": %.2f, \"p99_ms\": %.2f},\n"
            "  \"neworder_p50_ratio\": %.3f,\n"
            "  \"readonly_multiget_off\": {\"tps\": %.1f, \"p50_ms\": %.2f},\n"
            "  \"readonly_multiget_on\": {\"tps\": %.1f, \"p50_ms\": %.2f},\n"
            "  \"readonly_tps_ratio\": %.4f,\n"
            "  \"reads_per_batch\": %.2f,\n"
            "  \"delivery_scan_off\": {\"per_min\": %.1f, \"p50_ms\": %.2f, "
            "\"p99_ms\": %.2f},\n"
            "  \"delivery_scan_on\": {\"per_min\": %.1f, \"p50_ms\": %.2f, "
            "\"p99_ms\": %.2f},\n"
            "  \"delivery_scan_p50_ratio\": %.3f,\n"
            "  \"stocklevel_scan_off\": {\"per_min\": %.1f, \"p50_ms\": %.2f, "
            "\"p99_ms\": %.2f},\n"
            "  \"stocklevel_scan_on\": {\"per_min\": %.1f, \"p50_ms\": %.2f, "
            "\"p99_ms\": %.2f},\n"
            "  \"stocklevel_scan_p50_ratio\": %.3f,\n"
            "  \"specs_per_scan_batch\": %.2f\n"
            "}\n",
            no_off.run.tpm, no_off.run.p50_ms, no_off.run.p99_ms,
            no_on.run.tpm, no_on.run.p50_ms, no_on.run.p99_ms, p50_ratio,
            ro_off.run.tps, ro_off.run.p50_ms, ro_on.run.tps, ro_on.run.p50_ms,
            tps_ratio, ro_on.reads_per_batch, dl_off.run.tpm,
            dl_off.run.p50_ms, dl_off.run.p99_ms, dl_on.run.tpm,
            dl_on.run.p50_ms, dl_on.run.p99_ms, delivery_ratio,
            sl_off.run.tpm, sl_off.run.p50_ms, sl_off.run.p99_ms,
            sl_on.run.tpm, sl_on.run.p50_ms, sl_on.run.p99_ms,
            stocklevel_ratio, sl_on.reads_per_batch);
    fclose(f);
  }
  return 0;
}
