// Ablation: the hot transaction path amortizations (DESIGN.md §10) —
// pipelined write batching (per-shard kDnWriteBatch buffers flushed at
// thresholds/barriers/commit) and GTM timestamp coalescing (concurrent
// begin/commit requests sharing one kGtmTimestamp RPC) — measured with
// TPC-C NewOrder on a 3-region uniform topology at 10/50/100 ms RTT under
// both GTM and GClock timestamping.
//
// A second section isolates the coalescer: N closed-loop begin+commit
// clients against a GTM server 50 ms away, reporting GTM RPCs per
// transaction with coalescing on vs off.
//
// A third axis is the commit protocol itself: TimestampMode::kEpoch
// (DESIGN.md §15) joins the mode sweep, an epoch-interval micro-sweep
// (1/5/20 ms) shows the seal-wait vs amortization trade, and an acceptance
// pair compares EPOCH against the batched-GTM baseline at 50 ms RTT.
//
// With GDB_TXNPATH_GATE_ONLY set, only the 50 ms GTM-mode batching on/off
// pair, the EPOCH acceptance pair, and the coalescing micro-section run
// (the check.sh smoke path); with GDB_TXNPATH_JSON=<path>, those numbers
// are written as JSON (BENCH_txnpath.json).

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/txn/gtm_server.h"
#include "src/txn/timestamp_source.h"

using namespace globaldb;
using namespace globaldb::bench;

namespace {

struct TxnPathResult {
  RunResult run;
  double gtm_rpcs_per_txn = 0;
  double mean_batch_entries = 0;
  /// EPOCH mode only: commit-timestamp RPCs per committed transaction (the
  /// amortization headline — one grant per epoch, shared by its members).
  double epoch_commit_ts_rpcs_per_txn = 0;
  double mean_epoch_batch = 0;
};

const char* ModeLabel(TimestampMode mode) {
  switch (mode) {
    case TimestampMode::kGtm:
      return "GTM";
    case TimestampMode::kDual:
      return "DUAL";
    case TimestampMode::kGclock:
      return "GClock";
    case TimestampMode::kEpoch:
      return "EPOCH";
  }
  return "?";
}

TxnPathResult RunTxnPath(bool batching, TimestampMode mode, SimDuration rtt,
                         TpccConfig config, int clients, SimDuration duration,
                         SimDuration epoch_interval = 5 * kMillisecond) {
  sim::Simulator sim(47);
  ClusterOptions options =
      MakeClusterOptions(SystemKind::kGlobalDb, sim::Topology::Uniform(3, rtt));
  options.initial_mode = mode;
  options.coordinator.enable_write_batching = batching;
  // Coalescing rides along in both variants: the ablation isolates the
  // write-batching axis; the micro-section below isolates the coalescer.
  options.coordinator.coalesce_gtm = true;
  options.coordinator.epoch_interval = epoch_interval;
  if (mode == TimestampMode::kEpoch) {
    // Measure steady-state EPOCH: contended NewOrder keys make some seals
    // spike past the default demotion thresholds, and a mid-run EPOCH->GTM
    // fallback would silently turn this into a GTM measurement.
    options.health.epoch_abort_permille_limit = 1000;
    options.health.epoch_seal_latency_limit = 60 * kSecond;
  }
  Cluster cluster(&sim, options);
  cluster.Start();
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();
  sim.RunFor(300 * kMillisecond);

  WorkloadDriver::Options driver_options;
  driver_options.clients = clients;
  // Eager NewOrder pays tens of sequential RTTs per transaction; the
  // window must hold several of them or the slow variants measure zero.
  driver_options.warmup = std::max<SimDuration>(400 * kMillisecond, 8 * rtt);
  driver_options.duration = std::max<SimDuration>(duration, 50 * rtt);
  WorkloadDriver driver(&cluster, driver_options);
  TxnPathResult result;
  result.run.stats = driver.Run(
      [&tpcc](CoordinatorNode* cn, Rng* rng) { return tpcc.NewOrder(cn, rng); });
  result.run.tpm = result.run.stats.PerMinute();
  result.run.tps = result.run.stats.Throughput();
  result.run.p50_ms =
      static_cast<double>(result.run.stats.latency.Percentile(50)) /
      kMillisecond;
  result.run.p99_ms =
      static_cast<double>(result.run.stats.latency.Percentile(99)) /
      kMillisecond;

  int64_t gtm_rpcs = 0;
  int64_t epoch_ts_rpcs = 0;
  Histogram batch_sizes;
  Histogram epoch_batches;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    gtm_rpcs += cluster.cn(i).timestamp_source().metrics().Get("ts.gtm_rpcs");
    epoch_ts_rpcs += cluster.cn(i).metrics().Get("epoch.commit_ts_rpcs");
    for (int64_t v :
         cluster.cn(i).metrics().Hist("cn.write_batch_size").values()) {
      batch_sizes.Record(v);
    }
    for (int64_t v :
         cluster.cn(i).metrics().Hist("epoch.seal_batch_size").values()) {
      epoch_batches.Record(v);
    }
  }
  const int64_t txns = result.run.stats.committed + result.run.stats.aborted;
  if (txns > 0) {
    result.gtm_rpcs_per_txn =
        static_cast<double>(gtm_rpcs) / static_cast<double>(txns);
  }
  if (result.run.stats.committed > 0) {
    result.epoch_commit_ts_rpcs_per_txn =
        static_cast<double>(epoch_ts_rpcs) /
        static_cast<double>(result.run.stats.committed);
  }
  result.mean_batch_entries = batch_sizes.mean();
  result.mean_epoch_batch = epoch_batches.mean();
  if (getenv("GDB_BENCH_RPC_STATS") != nullptr) {
    printf("%s%s", FormatRpcStats(cluster).c_str(),
           FormatCommitPhaseStats(cluster).c_str());
  }
  return result;
}

// --- GTM coalescing micro-section -------------------------------------------

sim::Task<void> BeginCommitLoop(TimestampSource* src, int64_t* done,
                                const bool* stop) {
  while (!*stop) {
    auto grant = co_await src->BeginTs(false);
    if (!grant.ok()) continue;
    auto ts = co_await src->CommitTs(grant->mode);
    if (ts.ok()) ++*done;
  }
}

struct CoalesceRow {
  double txn_per_s = 0;
  double rpcs_per_txn = 0;
  double mean_batch = 0;
};

/// N closed-loop begin+commit clients on one CN with the GTM server 50 ms
/// away (one-way 25 ms per hop, RTT 50 ms), GTM mode.
CoalesceRow RunCoalesceMicro(int clients, bool coalesce) {
  sim::Simulator sim(31);
  sim::NetworkOptions nopt;
  nopt.nagle_enabled = false;
  sim::Network net(&sim, sim::Topology::Uniform(2, 50 * kMillisecond), nopt);
  const NodeId gtm_node = 0, cn = 1;
  net.RegisterNode(gtm_node, 0);
  net.RegisterNode(cn, 1);
  GtmServer gtm(&sim, &net, gtm_node);
  sim::HardwareClock clock(&sim, sim.rng().Fork());
  TimestampSource src(&sim, &net, cn, gtm_node, &clock);
  src.set_coalescing(coalesce);

  const SimDuration duration = 5 * kSecond;
  int64_t done = 0;
  bool stop = false;
  for (int i = 0; i < clients; ++i) {
    sim.Spawn(BeginCommitLoop(&src, &done, &stop));
  }
  sim.RunFor(duration);
  stop = true;
  sim.RunFor(500 * kMillisecond);

  CoalesceRow row;
  row.txn_per_s =
      static_cast<double>(done) / (static_cast<double>(duration) / kSecond);
  // Each transaction issues two timestamp requests (begin + commit); the
  // gate counts RPCs per *transaction*, so without coalescing this is ~2.
  const int64_t rpcs = src.metrics().Get("ts.gtm_rpcs");
  if (done > 0) {
    row.rpcs_per_txn = static_cast<double>(rpcs) / static_cast<double>(done);
  }
  row.mean_batch = src.metrics().Hist("ts.coalesce_batch").mean();
  return row;
}

}  // namespace

int main() {
  const bool gate_only = getenv("GDB_TXNPATH_GATE_ONLY") != nullptr;
  const SimDuration duration = BenchDuration();
  const int clients = BenchClients();
  TpccConfig config = MakeTpccConfig();
  // Every transaction's home warehouse lives behind a WAN link (the paper's
  // physical-affinity knob at its worst case): with local warehouses the
  // write statements never leave the region and there is nothing for the
  // write batch to amortize.
  config.remote_warehouse_fraction = 1.0;

  if (!gate_only) {
    PrintHeader("Ablation: commit protocol x RTT (TPC-C NewOrder, 3-region "
                "uniform RTT, write batching on)",
                "mode    rtt_ms  batching   NewOrder/min   p50_ms   p99_ms  "
                "gtm_rpcs/txn  batch_entries");
    const TimestampMode modes[] = {TimestampMode::kGtm, TimestampMode::kGclock,
                                   TimestampMode::kEpoch};
    const SimDuration rtts[] = {10 * kMillisecond, 50 * kMillisecond,
                                100 * kMillisecond};
    for (TimestampMode mode : modes) {
      for (SimDuration rtt : rtts) {
        for (bool batching : {false, true}) {
          TxnPathResult r =
              RunTxnPath(batching, mode, rtt, config, clients, duration);
          printf("%-7s %6lld  %-8s %12.0f %8.1f %8.1f %13.3f %14.1f\n",
                 ModeLabel(mode), static_cast<long long>(rtt / kMillisecond),
                 batching ? "on" : "off", r.run.tpm, r.run.p50_ms,
                 r.run.p99_ms, r.gtm_rpcs_per_txn, r.mean_batch_entries);
          fflush(stdout);
        }
      }
    }

    PrintHeader("Epoch interval micro-sweep (EPOCH, 50 ms RTT, batching on): "
                "shorter epochs cut the seal wait, longer epochs amortize "
                "more members per grant",
                "interval_ms   NewOrder/min   p50_ms   p99_ms  "
                "commit_ts_rpcs/txn  members/seal");
    for (SimDuration interval :
         {1 * kMillisecond, 5 * kMillisecond, 20 * kMillisecond}) {
      TxnPathResult r = RunTxnPath(true, TimestampMode::kEpoch,
                                   50 * kMillisecond, config, clients,
                                   duration, interval);
      printf("%11lld %14.0f %8.1f %8.1f %19.4f %13.1f\n",
             static_cast<long long>(interval / kMillisecond), r.run.tpm,
             r.run.p50_ms, r.run.p99_ms, r.epoch_commit_ts_rpcs_per_txn,
             r.mean_epoch_batch);
      fflush(stdout);
    }
  }

  // Acceptance pair: GTM mode, 50 ms RTT, batching off vs on.
  PrintHeader("Write batching gate (GTM, 50 ms RTT)",
              "batching   NewOrder/min   p50_ms   p99_ms");
  TxnPathResult off = RunTxnPath(false, TimestampMode::kGtm,
                                 50 * kMillisecond, config, clients, duration);
  printf("%-8s %14.0f %8.1f %8.1f\n", "off", off.run.tpm, off.run.p50_ms,
         off.run.p99_ms);
  fflush(stdout);
  TxnPathResult on = RunTxnPath(true, TimestampMode::kGtm, 50 * kMillisecond,
                                config, clients, duration);
  printf("%-8s %14.0f %8.1f %8.1f\n", "on", on.run.tpm, on.run.p50_ms,
         on.run.p99_ms);
  const double speedup = off.run.tpm > 0 ? on.run.tpm / off.run.tpm : 0;
  const double p50_cut =
      off.run.p50_ms > 0 ? 1.0 - on.run.p50_ms / off.run.p50_ms : 0;
  printf("speedup (on/off): %.2fx   p50 reduction: %.0f%%\n", speedup,
         p50_cut * 100.0);
  fflush(stdout);

  // Epoch/group-commit gate (DESIGN.md §15): EPOCH vs the batched-GTM
  // baseline just measured, same 50 ms RTT. The headline is the NewOrder
  // commit tail: EPOCH replaces the per-transaction timestamp fetch +
  // 2PC rounds with one seal shared by every member. The baseline protocol
  // is overridable (GDB_TIMESTAMP_MODE=gclock compares against GClock), as
  // is the seal cadence (GDB_EPOCH_INTERVAL_MS, README knob table).
  const TimestampMode base_mode =
      TimestampModeFromEnv("GDB_TIMESTAMP_MODE", TimestampMode::kGtm);
  const char* interval_env = getenv("GDB_EPOCH_INTERVAL_MS");
  const SimDuration epoch_interval =
      (interval_env != nullptr ? atoll(interval_env) : 5) * kMillisecond;
  TxnPathResult base = on;
  if (base_mode != TimestampMode::kGtm) {
    base = RunTxnPath(true, base_mode, 50 * kMillisecond, config, clients,
                      duration);
  }
  PrintHeader("Epoch/group-commit gate (50 ms RTT, batching on)",
              "mode     NewOrder/min   p50_ms   p99_ms  commit_ts_rpcs/txn");
  printf("%-7s %14.0f %8.1f %8.1f %19.4f\n", ModeLabel(base_mode),
         base.run.tpm, base.run.p50_ms, base.run.p99_ms,
         base.epoch_commit_ts_rpcs_per_txn);
  fflush(stdout);
  TxnPathResult epoch = RunTxnPath(true, TimestampMode::kEpoch,
                                   50 * kMillisecond, config, clients,
                                   duration, epoch_interval);
  printf("%-7s %14.0f %8.1f %8.1f %19.4f\n", "EPOCH", epoch.run.tpm,
         epoch.run.p50_ms, epoch.run.p99_ms,
         epoch.epoch_commit_ts_rpcs_per_txn);
  const double epoch_speedup =
      epoch.run.p50_ms > 0 ? base.run.p50_ms / epoch.run.p50_ms : 0;
  printf("p50 speedup (%s/EPOCH): %.2fx   commit-ts RPCs per committed "
         "txn: %.4f\n",
         ModeLabel(base_mode), epoch_speedup,
         epoch.epoch_commit_ts_rpcs_per_txn);

  PrintHeader("GTM timestamp coalescing (16 closed-loop clients, 50 ms to "
              "the GTM)",
              "coalescing   txn/s   gtm_rpcs/txn   mean_batch");
  const CoalesceRow plain = RunCoalesceMicro(16, false);
  printf("%-10s %7.0f %14.3f %12.1f\n", "off", plain.txn_per_s,
         plain.rpcs_per_txn, plain.mean_batch);
  fflush(stdout);
  const CoalesceRow merged = RunCoalesceMicro(16, true);
  printf("%-10s %7.0f %14.3f %12.1f\n", "on", merged.txn_per_s,
         merged.rpcs_per_txn, merged.mean_batch);

  if (const char* json_path = getenv("GDB_TXNPATH_JSON")) {
    FILE* f = fopen(json_path, "w");
    GDB_CHECK(f != nullptr) << "cannot write " << json_path;
    fprintf(f,
            "{\n"
            "  \"rtt_ms\": 50,\n"
            "  \"mode\": \"gtm\",\n"
            "  \"batching_off\": {\"neworder_per_min\": %.1f, \"p50_ms\": "
            "%.2f, \"p99_ms\": %.2f},\n"
            "  \"batching_on\": {\"neworder_per_min\": %.1f, \"p50_ms\": "
            "%.2f, \"p99_ms\": %.2f},\n"
            "  \"speedup\": %.3f,\n"
            "  \"p50_reduction\": %.3f,\n"
            "  \"coalesce_clients\": 16,\n"
            "  \"gtm_rpcs_per_txn_coalesced\": %.4f,\n"
            "  \"gtm_rpcs_per_txn_plain\": %.4f,\n"
            "  \"coalesce_mean_batch\": %.2f,\n"
            "  \"epoch\": {\"neworder_per_min\": %.1f, \"p50_ms\": %.2f, "
            "\"p99_ms\": %.2f, \"members_per_seal\": %.2f},\n"
            "  \"epoch_speedup\": %.3f,\n"
            "  \"epoch_commit_ts_rpcs_per_txn\": %.4f\n"
            "}\n",
            off.run.tpm, off.run.p50_ms, off.run.p99_ms, on.run.tpm,
            on.run.p50_ms, on.run.p99_ms, speedup, p50_cut,
            merged.rpcs_per_txn, plain.rpcs_per_txn, merged.mean_batch,
            epoch.run.tpm, epoch.run.p50_ms, epoch.run.p99_ms,
            epoch.mean_epoch_batch, epoch_speedup,
            epoch.epoch_commit_ts_rpcs_per_txn);
    fclose(f);
  }
  return 0;
}
