// Ablation: RCP collection and heartbeat intervals vs read freshness and
// read-only throughput (Section IV-A). The replica consistency point can
// only be as fresh as the heartbeat cadence on idle shards and the RCP
// polling cadence allow.

#include "bench/bench_util.h"

using namespace globaldb;
using namespace globaldb::bench;

int main() {
  const SimDuration duration = BenchDuration() / 2;
  const int clients = BenchClients() / 2;
  TpccConfig config = MakeTpccConfig();
  config.read_only_mix = true;

  const SimDuration intervals_ms[] = {1, 5, 10, 25, 50, 100};

  PrintHeader("Ablation: RCP poll + heartbeat interval vs freshness "
              "(Three-City, read-only TPC-C)",
              "interval_ms   read_tps   rcp_staleness_ms   ror_share%");
  for (SimDuration interval : intervals_ms) {
    sim::Simulator sim(31);
    ClusterOptions options =
        MakeClusterOptions(SystemKind::kGlobalDb, sim::Topology::ThreeCity());
    options.coordinator.rcp_interval = interval * kMillisecond;
    options.coordinator.heartbeat_interval = interval * kMillisecond;
    Cluster cluster(&sim, options);
    cluster.Start();
    TpccWorkload tpcc(&cluster, config);
    Status s = tpcc.Setup();
    GDB_CHECK(s.ok()) << s.ToString();
    cluster.WaitForRcp(5 * kSecond);
    sim.RunFor(300 * kMillisecond);

    WorkloadDriver::Options driver_options;
    driver_options.clients = clients;
    driver_options.warmup = 300 * kMillisecond;
    driver_options.duration = duration;
    WorkloadDriver driver(&cluster, driver_options);
    WorkloadStats stats = driver.Run(tpcc.MixFn());

    // Freshness of the RCP as observed by a remote CN at the end of the
    // run: (true time - rcp), valid because GClock timestamps are epoch ns.
    auto& cn = cluster.cn(2);
    const double staleness_ms =
        static_cast<double>(sim.now() - static_cast<SimTime>(cn.rcp())) /
        kMillisecond;
    int64_t ror = 0, total = 0;
    for (size_t i = 0; i < cluster.num_cns(); ++i) {
      ror += cluster.cn(i).metrics().Get("cn.ror_txns");
      total += cluster.cn(i).metrics().Get("cn.ror_txns") +
               cluster.cn(i).metrics().Get("cn.txns");
    }
    printf("%11lld %10.0f %18.1f %11.1f\n",
           static_cast<long long>(interval), stats.Throughput(), staleness_ms,
           total > 0 ? 100.0 * ror / total : 0.0);
    fflush(stdout);
  }
  printf("\nTakeaway: the RCP lags by roughly the heartbeat + poll interval "
         "plus one replication round trip; throughput is insensitive until "
         "staleness pushes reads back to primaries.\n");
  return 0;
}
