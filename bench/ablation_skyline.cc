// Ablation: dynamic (skyline) replica selection under failures and lag
// (Section IV-B). Three scenarios on the Three-City cluster running the
// read-only TPC-C mix:
//   1. healthy        — all replicas up
//   2. lagging        — one region's replicas replay slowly (stale)
//   3. region-down    — one region's replicas crashed
// Dynamic selection reroutes to fresher / healthy nodes; reads never fail.

#include "bench/bench_util.h"

using namespace globaldb;
using namespace globaldb::bench;

namespace {

enum class Scenario { kHealthy, kLagging, kRegionDown };

RunResult RunScenario(Scenario scenario, TpccConfig config, int clients,
                      SimDuration duration, int64_t* failovers) {
  sim::Simulator sim(37);
  Cluster cluster(&sim, MakeClusterOptions(SystemKind::kGlobalDb,
                                           sim::Topology::ThreeCity()));
  cluster.Start();
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();
  sim.RunFor(300 * kMillisecond);

  // Fault injection: target every replica hosted in region 1.
  for (ShardId shard = 0; shard < cluster.num_shards(); ++shard) {
    for (uint32_t ri = 0; ri < cluster.options().replicas_per_shard; ++ri) {
      if (cluster.ReplicaRegion(shard, ri) != 1) continue;
      if (scenario == Scenario::kLagging) {
        cluster.replica(shard, ri).applier().set_extra_apply_delay(
            80 * kMillisecond);
      } else if (scenario == Scenario::kRegionDown) {
        cluster.network().SetNodeUp(cluster.ReplicaNodeId(shard, ri), false);
      }
    }
  }

  WorkloadDriver::Options driver_options;
  driver_options.clients = clients;
  driver_options.warmup = 400 * kMillisecond;
  driver_options.duration = duration;
  WorkloadDriver driver(&cluster, driver_options);
  RunResult result;
  result.stats = driver.Run(tpcc.MixFn());
  result.tpm = result.stats.PerMinute();
  result.p50_ms =
      static_cast<double>(result.stats.latency.Percentile(50)) / kMillisecond;
  result.p99_ms =
      static_cast<double>(result.stats.latency.Percentile(99)) / kMillisecond;
  *failovers = 0;
  for (size_t i = 0; i < cluster.num_cns(); ++i) {
    *failovers += cluster.cn(i).metrics().Get("cn.replica_failovers");
  }
  return result;
}

}  // namespace

int main() {
  const SimDuration duration = BenchDuration() / 2;
  const int clients = BenchClients() / 2;
  TpccConfig config = MakeTpccConfig();
  config.read_only_mix = true;

  struct Case {
    const char* label;
    Scenario scenario;
  };
  const Case cases[] = {
      {"all replicas healthy", Scenario::kHealthy},
      {"region-1 replicas lag 80ms/batch", Scenario::kLagging},
      {"region-1 replicas crashed", Scenario::kRegionDown},
  };

  PrintHeader("Ablation: skyline node selection under replica lag/failure "
              "(read-only TPC-C)",
              "scenario                             read_tps  p50_ms  "
              "p99_ms  failed_reads  reroutes");
  for (const Case& c : cases) {
    int64_t failovers = 0;
    RunResult r = RunScenario(c.scenario, config, clients, duration,
                              &failovers);
    printf("%-36s %8.0f %7.1f %8.1f %12lld %9lld\n", c.label, r.tps == 0
               ? r.stats.Throughput()
               : r.tps,
           r.p50_ms, r.p99_ms, static_cast<long long>(r.stats.aborted),
           static_cast<long long>(failovers));
    fflush(stdout);
  }
  printf("\nTakeaway: crashed or lagging replicas are excluded from the "
         "skyline; queries reroute to other replicas or primaries with no "
         "failed reads.\n");
  return 0;
}
