// Fig. 6b: TPC-C throughput of a node NOT co-located with the GTM server,
// as a function of injected network delay (tc-style, One-Region cluster).
//
// Paper shape: baseline GaussDB loses up to ~90% at 100 ms of delay;
// GlobalDB is flat across the sweep.

#include "bench/bench_util.h"

using namespace globaldb;
using namespace globaldb::bench;

namespace {

RunResult RunPinned(SystemKind kind, SimDuration delay_rtt, TpccConfig config,
                    int clients, SimDuration duration) {
  sim::Simulator sim(17);
  // 3 regions with uniform injected delay; the GTM lives in region 0 and
  // the measured clients attach to the CN in region 1.
  Cluster cluster(&sim, MakeClusterOptions(
                            kind, sim::Topology::Uniform(3, delay_rtt)));
  cluster.Start();
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();
  sim.RunFor(300 * kMillisecond);

  WorkloadDriver::Options options;
  options.clients = clients;
  options.warmup = 400 * kMillisecond;
  options.duration = duration;
  options.pin_cn = 1;  // region 1: not co-located with the GTM
  WorkloadDriver driver(&cluster, options);
  RunResult result;
  result.stats = driver.Run(tpcc.MixFn());
  result.rpc_stats = FormatRpcStats(cluster) + FormatCommitPhaseStats(cluster);
  result.tpm = result.stats.PerMinute();
  result.p50_ms =
      static_cast<double>(result.stats.latency.Percentile(50)) / kMillisecond;
  result.p99_ms =
      static_cast<double>(result.stats.latency.Percentile(99)) / kMillisecond;
  return result;
}

}  // namespace

int main() {
  const SimDuration duration = BenchDuration();
  const int clients = BenchClients() / 3;  // one CN's worth of terminals
  TpccConfig config = MakeTpccConfig();

  const SimDuration delays_ms[] = {0, 5, 10, 25, 50, 100};

  PrintHeader("Fig 6b: TPC-C throughput vs injected delay "
              "(node not co-located with GTM)",
              "delay_ms   baseline_tpmC  baseline_rel   globaldb_tpmC  "
              "globaldb_rel");
  double base0 = 0, global0 = 0;
  std::string last_rpc_stats;
  for (SimDuration d : delays_ms) {
    const SimDuration rtt = d * kMillisecond + 100 * kMicrosecond;
    RunResult baseline =
        RunPinned(SystemKind::kBaseline, rtt, config, clients, duration);
    RunResult globaldb =
        RunPinned(SystemKind::kGlobalDb, rtt, config, clients, duration);
    if (base0 == 0) base0 = baseline.tpm;
    if (global0 == 0) global0 = globaldb.tpm;
    printf("%8lld %15.0f %13.2f %15.0f %13.2f\n", static_cast<long long>(d),
           baseline.tpm, base0 > 0 ? baseline.tpm / base0 : 0,
           globaldb.tpm, global0 > 0 ? globaldb.tpm / global0 : 0);
    fflush(stdout);
    last_rpc_stats = globaldb.rpc_stats;
  }
  printf("\nGlobalDB per-method RPC stats at the 100 ms point:\n%s",
         last_rpc_stats.c_str());
  printf("\nPaper reference: baseline degrades by up to ~90%% at 100 ms; "
         "GlobalDB holds its throughput regardless of delay.\n");
  return 0;
}
