// Microbenchmarks (google-benchmark) for the hot substrate paths: varint
// codec, LZ compression, redo record encode/decode, B+-tree, MVCC reads,
// and simulated clock reads.

#include <benchmark/benchmark.h>

#include "src/common/codec.h"
#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/compression/lz.h"
#include "src/log/redo_record.h"
#include "src/sim/hardware_clock.h"
#include "src/sim/simulator.h"
#include "src/storage/btree.h"
#include "src/storage/mvcc_table.h"
#include "src/storage/value.h"

namespace globaldb {
namespace {

void BM_VarintEncodeDecode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.Next() >> rng.Uniform(64));
  for (auto _ : state) {
    std::string buf;
    for (uint64_t v : values) PutVarint64(&buf, v);
    Slice in(buf);
    uint64_t out = 0;
    while (GetVarint64(&in, &out)) benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_VarintEncodeDecode);

std::string MakeRedoPayload(int records) {
  Rng rng(2);
  std::string payload;
  for (int i = 0; i < records; ++i) {
    RedoRecord r = RedoRecord::Insert(
        i, 3, "warehouse_" + std::to_string(i % 20),
        "customer_row_payload_" + rng.AlphaString(20, 60));
    r.lsn = i + 1;
    r.EncodeTo(&payload);
  }
  return payload;
}

void BM_LzCompress(benchmark::State& state) {
  const std::string payload = MakeRedoPayload(500);
  std::string out;
  for (auto _ : state) {
    LzCodec::Compress(payload, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
  state.counters["ratio"] =
      static_cast<double>(out.size()) / static_cast<double>(payload.size());
}
BENCHMARK(BM_LzCompress);

void BM_LzDecompress(benchmark::State& state) {
  const std::string payload = MakeRedoPayload(500);
  std::string compressed;
  LzCodec::Compress(payload, &compressed);
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCodec::Decompress(compressed, &out));
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_LzDecompress);

void BM_RedoRecordRoundTrip(benchmark::State& state) {
  RedoRecord record = RedoRecord::Insert(42, 7, "some_primary_key",
                                         std::string(120, 'x'));
  record.lsn = 99;
  for (auto _ : state) {
    std::string buf;
    record.EncodeTo(&buf);
    Slice in(buf);
    RedoRecord out;
    benchmark::DoNotOptimize(RedoRecord::DecodeFrom(&in, &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedoRecordRoundTrip);

void BM_BTreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BTree<int> tree;
    for (int i = 0; i < n; ++i) {
      char key[16];
      snprintf(key, sizeof(key), "k%08d", (i * 2654435761u) % n);
      tree.Put(key, i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  const int n = 100000;
  BTree<int> tree;
  for (int i = 0; i < n; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", i);
    tree.Put(key, i);
  }
  Rng rng(3);
  for (auto _ : state) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", static_cast<int>(rng.Uniform(n)));
    benchmark::DoNotOptimize(tree.Find(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup);

void BM_MvccRead(benchmark::State& state) {
  MvccTable table(1);
  for (int i = 0; i < 10000; ++i) {
    const std::string key = "key" + std::to_string(i);
    table.ApplyInsert(key, "value" + std::to_string(i), 1);
  }
  table.CommitTxn(1, 100);
  // Five newer versions on a hot key.
  for (int v = 0; v < 5; ++v) {
    table.ApplyUpdate("key42", "v" + std::to_string(v), 2 + v);
    table.CommitTxn(2 + v, 200 + v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Read("key42", 150));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MvccRead);

void BM_HardwareClockRead(benchmark::State& state) {
  sim::Simulator sim(5);
  sim::HardwareClock clock(&sim, Rng(6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.Read());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HardwareClockRead);

void BM_Hash64(benchmark::State& state) {
  const std::string key = "district_00042_0007";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash64(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Hash64);

void BM_KeyEncode(benchmark::State& state) {
  Row row = {int64_t{42}, int64_t{7}, int64_t{12345}};
  const std::vector<int> cols = {0, 1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeKey(row, cols));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyEncode);

}  // namespace
}  // namespace globaldb

BENCHMARK_MAIN();
