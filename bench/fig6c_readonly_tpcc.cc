// Fig. 6c: read-only TPC-C (Order-status + Stock-level only, 50% of
// transactions multi-shard) as a function of injected delay.
//
// Paper shape: GlobalDB improves read throughput by up to 14x over the
// baseline thanks to reads on local replicas (ROR) and the removal of
// centralized timestamping.

#include "bench/bench_util.h"

using namespace globaldb;
using namespace globaldb::bench;

namespace {

RunResult RunReadOnly(SystemKind kind, SimDuration delay_rtt,
                      TpccConfig config, int clients, SimDuration duration) {
  sim::Simulator sim(23);
  Cluster cluster(&sim, MakeClusterOptions(
                            kind, sim::Topology::Uniform(3, delay_rtt)));
  cluster.Start();
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();
  sim.RunFor(300 * kMillisecond);

  WorkloadDriver::Options options;
  options.clients = clients;
  options.warmup = 400 * kMillisecond;
  options.duration = duration;
  WorkloadDriver driver(&cluster, options);
  RunResult result;
  result.stats = driver.Run(tpcc.MixFn());
  result.tpm = result.stats.PerMinute();
  result.tps = result.stats.Throughput();
  result.p50_ms =
      static_cast<double>(result.stats.latency.Percentile(50)) / kMillisecond;
  if (getenv("GDB_BENCH_RPC_STATS") != nullptr) {
    printf("%s%s", FormatRpcStats(cluster).c_str(),
           FormatReadPathStats(cluster).c_str());
  }
  if (getenv("GDB_BENCH_DEBUG") != nullptr) {
    for (const auto& [reason, count] : result.stats.abort_reasons) {
      printf("    abort %8lld  %s\n", static_cast<long long>(count),
             reason.c_str());
    }
  }
  return result;
}

}  // namespace

int main() {
  const SimDuration duration = BenchDuration();
  // The paper drives 600 terminals; the achievable speedup is the ratio of
  // the (CPU-bound) replica-serving capacity to the latency-bound baseline,
  // so the client count directly scales the reported factor.
  const int clients =
      getenv("GDB_BENCH_CLIENTS") != nullptr ? BenchClients() : 600;
  TpccConfig config = MakeTpccConfig();
  config.read_only_mix = true;  // Order-status + Stock-level only
  config.read_only_multi_shard_fraction = 0.5;

  const SimDuration delays_ms[] = {0, 5, 10, 25, 50, 100};

  PrintHeader("Fig 6c: read-only TPC-C throughput vs injected delay "
              "(50% multi-shard)",
              "delay_ms   baseline_tps   globaldb_tps   speedup");
  for (SimDuration d : delays_ms) {
    const SimDuration rtt = d * kMillisecond + 100 * kMicrosecond;
    RunResult baseline =
        RunReadOnly(SystemKind::kBaseline, rtt, config, clients, duration);
    RunResult globaldb =
        RunReadOnly(SystemKind::kGlobalDb, rtt, config, clients, duration);
    printf("%8lld %14.0f %14.0f %9.1fx\n", static_cast<long long>(d),
           baseline.tps, globaldb.tps,
           baseline.tps > 0 ? globaldb.tps / baseline.tps : 0.0);
    fflush(stdout);
  }
  printf("\nPaper reference: GlobalDB read throughput up to ~14x the "
         "baseline at high delay.\n");
  return 0;
}
