// Ablation: the three log-shipping / transport optimizations the paper's
// GlobalDB deployment enables (Section V-A) — LZ redo compression, TCP BBR,
// Nagle off — plus the replication mode, measured one at a time on the
// Three-City cluster.

#include "bench/bench_util.h"

using namespace globaldb;
using namespace globaldb::bench;

namespace {

struct Variant {
  const char* label;
  void (*apply)(ClusterOptions*);
};

RunResult RunVariant(const Variant& v, TpccConfig config, int clients,
                     SimDuration duration, int64_t* cross_region_bytes) {
  sim::Simulator sim(29);
  ClusterOptions options =
      MakeClusterOptions(SystemKind::kGlobalDb, sim::Topology::ThreeCity());
  v.apply(&options);
  Cluster cluster(&sim, options);
  cluster.Start();
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();
  sim.RunFor(300 * kMillisecond);

  WorkloadDriver::Options driver_options;
  driver_options.clients = clients;
  driver_options.warmup = 400 * kMillisecond;
  driver_options.duration = duration;
  WorkloadDriver driver(&cluster, driver_options);
  RunResult result;
  result.stats = driver.Run(tpcc.MixFn());
  result.tpm = result.stats.PerMinute();
  result.p50_ms =
      static_cast<double>(result.stats.latency.Percentile(50)) / kMillisecond;
  *cross_region_bytes =
      cluster.network().metrics().Get("rpc.cross_region_bytes") +
      cluster.network().metrics().Get("send.cross_region_bytes");
  return result;
}

}  // namespace

int main() {
  const SimDuration duration = BenchDuration();
  const int clients = BenchClients();
  TpccConfig config = MakeTpccConfig();

  const Variant variants[] = {
      {"GlobalDB (all optimizations)", [](ClusterOptions*) {}},
      {"  - no LZ compression",
       [](ClusterOptions* o) {
         o->shipper.compression = CompressionType::kNone;
       }},
      {"  - Nagle re-enabled",
       [](ClusterOptions* o) { o->network.nagle_enabled = true; }},
      {"  - loss-based CC (no BBR)",
       [](ClusterOptions* o) { o->network.bbr_enabled = false; }},
      {"  - synchronous quorum replication",
       [](ClusterOptions* o) {
         o->shipper.mode = ReplicationMode::kSyncQuorum;
       }},
      {"  - centralized GTM timestamps",
       [](ClusterOptions* o) { o->initial_mode = TimestampMode::kGtm; }},
  };

  PrintHeader("Ablation: log shipping & transport optimizations "
              "(Three-City TPC-C)",
              "variant                                 tpmC    p50_ms  "
              "cross_region_MB");
  for (const Variant& v : variants) {
    int64_t bytes = 0;
    RunResult r = RunVariant(v, config, clients, duration, &bytes);
    printf("%-38s %8.0f %9.1f %12.1f\n", v.label, r.tpm, r.p50_ms,
           static_cast<double>(bytes) / 1e6);
    fflush(stdout);
  }
  return 0;
}
