// Ablation: the log-shipping / transport optimizations the paper's GlobalDB
// deployment enables (Section V-A) — LZ redo compression, TCP BBR, Nagle
// off, sliding-window pipelined shipping — plus the replication mode,
// measured one at a time on the Three-City cluster.
//
// A second section isolates the pipelined transport: catch-up throughput
// and steady-state visibility lag of one replica behind a 50 ms RTT link,
// stop-and-wait (window=1) vs the default window=8. With
// GDB_LOGSHIP_CATCHUP_ONLY set, only that section runs (the check.sh smoke
// path); with GDB_LOGSHIP_JSON=<path>, its numbers are also written as JSON
// (BENCH_logship.json).

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/replication/log_shipper.h"
#include "src/replication/replica_applier.h"

using namespace globaldb;
using namespace globaldb::bench;

namespace {

struct Variant {
  const char* label;
  void (*apply)(ClusterOptions*);
};

RunResult RunVariant(const Variant& v, TpccConfig config, int clients,
                     SimDuration duration, int64_t* cross_region_bytes) {
  sim::Simulator sim(29);
  ClusterOptions options =
      MakeClusterOptions(SystemKind::kGlobalDb, sim::Topology::ThreeCity());
  v.apply(&options);
  Cluster cluster(&sim, options);
  cluster.Start();
  TpccWorkload tpcc(&cluster, config);
  Status s = tpcc.Setup();
  GDB_CHECK(s.ok()) << s.ToString();
  cluster.WaitForRcp();
  sim.RunFor(300 * kMillisecond);

  WorkloadDriver::Options driver_options;
  driver_options.clients = clients;
  driver_options.warmup = 400 * kMillisecond;
  driver_options.duration = duration;
  WorkloadDriver driver(&cluster, driver_options);
  RunResult result;
  result.stats = driver.Run(tpcc.MixFn());
  result.tpm = result.stats.PerMinute();
  result.p50_ms =
      static_cast<double>(result.stats.latency.Percentile(50)) / kMillisecond;
  *cross_region_bytes =
      cluster.network().metrics().Get("rpc.cross_region_bytes") +
      cluster.network().metrics().Get("send.cross_region_bytes");
  return result;
}

// --- Pipelined transport section --------------------------------------------

struct LogshipRow {
  double catchup_mbps = 0;
  double steady_lag_ms = 0;
};

sim::Task<void> AppendLoad(sim::Simulator* sim, LogStream* stream,
                           LogShipper* shipper, const bool* stop) {
  // ~2.2 MB/s of live redo: 20 records (~4.5 KB) every 2 ms.
  TxnId txn = 1 << 20;
  while (!*stop) {
    co_await sim->Sleep(2 * kMillisecond);
    for (int i = 0; i < 10; ++i) {
      stream->Append(RedoRecord::Insert(txn, 1, "live_" + std::to_string(txn),
                                        std::string(200, 'y')));
      stream->Append(RedoRecord::Commit(txn, static_cast<Timestamp>(txn)));
      ++txn;
    }
    shipper->NotifyAppend();
  }
}

/// One primary + one replica over a 50 ms RTT WAN link: ship a ~16 MB redo
/// backlog (catch-up throughput), then sample the replica's visibility lag
/// under a steady append load for one second.
LogshipRow RunLogship(size_t window) {
  sim::Simulator sim(17);
  sim::NetworkOptions nopt;
  nopt.nagle_enabled = false;
  nopt.bbr_enabled = true;
  nopt.jitter_fraction = 0;
  sim::Network net(&sim, sim::Topology::Uniform(2, 50 * kMillisecond), nopt);
  const NodeId primary = 1, replica = 2;
  net.RegisterNode(primary, 0);
  net.RegisterNode(replica, 1);

  LogStream stream;
  TxnId txn = 0;
  while (stream.total_bytes() < 16 * 1024 * 1024) {
    ++txn;
    stream.Append(RedoRecord::Insert(txn, 1, "key_" + std::to_string(txn),
                                     std::string(200, 'x')));
    stream.Append(RedoRecord::Commit(txn, static_cast<Timestamp>(txn)));
  }
  const Lsn tail = stream.next_lsn() - 1;

  ShardStore store(0);
  Catalog catalog;
  sim::CpuScheduler cpu(&sim, 8);
  ReplicaApplier applier(&sim, &net, replica, /*shard=*/0, &store, &catalog,
                         &cpu);

  ShipperOptions options;
  options.compression = CompressionType::kNone;  // measure the raw transport
  options.max_inflight_batches = window;
  LogShipper shipper(&sim, &net, primary, /*shard=*/0, &stream, {replica},
                     options);
  LogshipRow row;

  const SimTime start = sim.now();
  shipper.Start();
  shipper.NotifyAppend();
  while (shipper.AckedLsn(replica) < tail && sim.now() < 120 * kSecond) {
    sim.RunFor(1 * kMillisecond);
  }
  GDB_CHECK(shipper.AckedLsn(replica) == tail) << "catch-up did not converge";
  row.catchup_mbps = static_cast<double>(stream.total_bytes()) / 1e6 /
                     (static_cast<double>(sim.now() - start) / kSecond);

  // Steady state: live appends at ~10 records/ms, lag sampled every 5 ms.
  bool stop = false;
  sim.Spawn(AppendLoad(&sim, &stream, &shipper, &stop));
  double lag_records_sum = 0;
  int samples = 0;
  const SimTime steady_until = sim.now() + 1 * kSecond;
  while (sim.now() < steady_until) {
    sim.RunFor(5 * kMillisecond);
    lag_records_sum += static_cast<double>(stream.next_lsn() - 1 -
                                           applier.applied_lsn());
    ++samples;
  }
  // 10 records/ms append rate converts record lag into time lag.
  row.steady_lag_ms = lag_records_sum / samples / 10.0;
  stop = true;
  shipper.Stop();
  sim.RunFor(100 * kMillisecond);
  return row;
}

}  // namespace

int main() {
  const bool catchup_only = getenv("GDB_LOGSHIP_CATCHUP_ONLY") != nullptr;

  if (!catchup_only) {
    const SimDuration duration = BenchDuration();
    const int clients = BenchClients();
    TpccConfig config = MakeTpccConfig();

    const Variant variants[] = {
        {"GlobalDB (all optimizations)", [](ClusterOptions*) {}},
        {"  - no LZ compression",
         [](ClusterOptions* o) {
           o->shipper.compression = CompressionType::kNone;
         }},
        {"  - stop-and-wait shipping (window=1)",
         [](ClusterOptions* o) { o->shipper.max_inflight_batches = 1; }},
        {"  - Nagle re-enabled",
         [](ClusterOptions* o) { o->network.nagle_enabled = true; }},
        {"  - loss-based CC (no BBR)",
         [](ClusterOptions* o) { o->network.bbr_enabled = false; }},
        {"  - synchronous quorum replication",
         [](ClusterOptions* o) {
           o->shipper.mode = ReplicationMode::kSyncQuorum;
         }},
        {"  - centralized GTM timestamps",
         [](ClusterOptions* o) { o->initial_mode = TimestampMode::kGtm; }},
    };

    PrintHeader("Ablation: log shipping & transport optimizations "
                "(Three-City TPC-C)",
                "variant                                 tpmC    p50_ms  "
                "cross_region_MB");
    for (const Variant& v : variants) {
      int64_t bytes = 0;
      RunResult r = RunVariant(v, config, clients, duration, &bytes);
      printf("%-38s %8.0f %9.1f %12.1f\n", v.label, r.tpm, r.p50_ms,
             static_cast<double>(bytes) / 1e6);
      fflush(stdout);
    }
  }

  PrintHeader("Pipelined log shipping: 16 MB catch-up + steady-state "
              "visibility lag (50 ms RTT)",
              "window      catchup_MB/s   steady_lag_ms");
  const LogshipRow stop_and_wait = RunLogship(1);
  printf("%-12s %12.1f %15.1f\n", "1 (s&w)", stop_and_wait.catchup_mbps,
         stop_and_wait.steady_lag_ms);
  fflush(stdout);
  const LogshipRow window8 = RunLogship(8);
  printf("%-12s %12.1f %15.1f\n", "8", window8.catchup_mbps,
         window8.steady_lag_ms);
  const double speedup = window8.catchup_mbps / stop_and_wait.catchup_mbps;
  printf("catch-up speedup (window=8 / window=1): %.1fx\n", speedup);

  if (const char* json_path = getenv("GDB_LOGSHIP_JSON")) {
    FILE* f = fopen(json_path, "w");
    GDB_CHECK(f != nullptr) << "cannot write " << json_path;
    fprintf(f,
            "{\n"
            "  \"rtt_ms\": 50,\n"
            "  \"window1\": {\"catchup_mbps\": %.2f, \"steady_lag_ms\": "
            "%.2f},\n"
            "  \"window8\": {\"catchup_mbps\": %.2f, \"steady_lag_ms\": "
            "%.2f},\n"
            "  \"catchup_speedup\": %.2f\n"
            "}\n",
            stop_and_wait.catchup_mbps, stop_and_wait.steady_lag_ms,
            window8.catchup_mbps, window8.steady_lag_ms, speedup);
    fclose(f);
  }
  return 0;
}
